// Shared experiment runners for the per-figure/table bench binaries.
//
// Every bench follows the same pattern: build the paper's scenario through
// these helpers, sweep the x-axis, run default_runs() seeds per point
// (median-of-5, as in the paper), print the paper-style series, and expose
// the headline numbers as google-benchmark counters.
#pragma once

#include <benchmark/benchmark.h>

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/runner/campaign.h"
#include "src/scenario/experiment.h"
#include "src/scenario/scenario.h"
#include "src/scenario/topology.h"

namespace g80211::bench {

// Base configuration used across experiments (802.11b, RTS/CTS on, the
// paper's defaults); measure window honours G80211_QUICK.
SimConfig base_config(Standard standard = Standard::B80211,
                      std::uint64_t seed = 1);

// --- N sender->receiver pairs, all in range --------------------------------

struct PairsSpec {
  int n_pairs = 2;
  bool tcp = true;
  double udp_rate_mbps = 12.0;
  SimConfig cfg;
  // When non-empty, record a frame capture of each run at the first
  // sender's vantage to `<capture_stem>_seed<seed>.{pcap,jsonl}` (see
  // src/capture/). Benches set this from run_capture_stem(), which returns
  // "" unless G80211_CAPTURE=1, so default runs stay bit-identical.
  std::string capture_stem;
  // Called after nodes/flows exist, before the run: install greedy
  // policies, GRC, per-link error rates, ...
  std::function<void(Sim&, std::vector<Node*>& senders,
                     std::vector<Node*>& receivers)>
      customize;
};

struct PairsResult {
  std::vector<double> goodput_mbps;  // per flow
  std::vector<double> sender_avg_cw;
  std::vector<double> avg_cwnd;      // per TCP flow (empty for UDP)
  std::vector<double> rts_sent;      // per sender
};

PairsResult run_pairs(const PairsSpec& spec, std::uint64_t seed);

// Median-of-seeds over the flow goodputs only (the common case).
std::vector<double> median_pair_goodputs(const PairsSpec& spec, int runs,
                                         std::uint64_t base_seed);

// --- One AP serving N clients ----------------------------------------------

struct SharedApSpec {
  int n_clients = 2;
  bool tcp = true;
  double udp_rate_mbps = 6.0;
  // Use the capture-safe layout (victims near, greedy client far) required
  // by ACK-spoofing scenarios; see scenario/topology.h.
  bool spoof_layout = false;
  SimConfig cfg;
  std::function<void(Sim&, Node& ap, std::vector<Node*>& clients)> customize;
};

struct SharedApResult {
  std::vector<double> goodput_mbps;  // per client flow
  std::vector<double> avg_cwnd;      // per TCP flow
};

SharedApResult run_shared_ap(const SharedApSpec& spec, std::uint64_t seed);

std::vector<double> median_shared_ap_goodputs(const SharedApSpec& spec,
                                              int runs,
                                              std::uint64_t base_seed);

// --- Remote senders behind a wired link (Figs 15/16) ------------------------

struct RemoteSpec {
  Time wired_latency = milliseconds(2);
  SimConfig cfg;
  // Configure the greedy receiver (clients[1]); nullptr = honest.
  std::function<void(Sim&, Node& ap, std::vector<Node*>& clients)> customize;
};

// Returns {victim goodput, greedy goodput}.
std::vector<double> run_remote(const RemoteSpec& spec, std::uint64_t seed);

// --- Hidden-terminal pairs (misbehavior 3, Figs 18/19, Table IV) ------------

struct HiddenSpec {
  double fake_gp_r1 = 0.0;  // greedy percentage of receiver 1 (0 = honest)
  double fake_gp_r2 = 0.0;
  Standard standard = Standard::B80211;
  Time measure = 0;  // 0: default_measure()
};

struct HiddenResult {
  double goodput_r1 = 0.0;
  double goodput_r2 = 0.0;
  double cw_s1 = 0.0;
  double cw_s2 = 0.0;
};

HiddenResult run_hidden(const HiddenSpec& spec, std::uint64_t seed);

// --- Campaign integration ----------------------------------------------------
//
// Sweep jobs for the parallel campaign runner (src/runner/campaign.h).
// Each job captures its spec *by value*, so the body is a pure function of
// the seed and safe to run on any worker thread; spec.customize must
// likewise capture its sweep parameters by value, never by reference to a
// loop variable.

// Goodput-per-flow job over run_pairs.
CampaignJob pairs_goodput_job(std::string label, double x, PairsSpec spec,
                              int runs, std::uint64_t base_seed);

// Goodput-per-client job over run_shared_ap.
CampaignJob shared_ap_goodput_job(std::string label, double x,
                                  SharedApSpec spec, int runs,
                                  std::uint64_t base_seed);

// Print aggregated campaign points as a paper-style table: the x value in
// the first column, then the per-metric medians. Call only after
// Campaign::run, from the main thread.
void print_points(const TableWriter& table,
                  const std::vector<CampaignPoint>& points);

// Register a benchmark that runs `fn` exactly once and reports its
// wall-clock; `fn` may set counters on the state.
void register_once(const char* name,
                   const std::function<void(benchmark::State&)>& fn);

}  // namespace g80211::bench
