// Extension: the mobile-client detection trade-off (paper Section VII-B).
// On a stationary victim, the 1 dB RSSI profile detects spoofed ACKs with
// few false positives. On a mobile victim the profile chases a moving
// target: honest ACKs get rejected (each costs a retransmission) while
// the cross-layer TCP/MAC correlation keeps working — exactly why the
// paper proposes it for mobile clients.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.h"
#include "src/detect/cross_layer_detector.h"
#include "src/detect/spoof_detector.h"
#include "src/net/mobility.h"

using namespace g80211;
using namespace g80211::bench;

namespace {

struct Row {
  double fp_rate = 0.0;     // honest ACKs rejected by the RSSI detector
  double rssi_caught = 0.0; // spoofs flagged by RSSI
  double xl_detected = 0.0; // cross-layer verdict (0/1)
};

Row run_case(bool mobile, bool attack, std::uint64_t seed) {
  SimConfig cfg;
  cfg.measure = default_measure();
  cfg.seed = seed;
  cfg.default_ber = 2e-4;
  cfg.capture_threshold = 10.0;
  Sim sim(cfg);
  const PairLayout l = pairs_in_range(2);
  Node& ns = sim.add_node(l.senders[0]);
  Node& gs = sim.add_node(l.senders[1]);
  Node& nr = sim.add_node(l.receivers[0]);
  Node& gr = sim.add_node(l.receivers[1]);
  auto fn = sim.add_tcp_flow(ns, nr);
  auto fg = sim.add_tcp_flow(gs, gr);
  if (attack) sim.make_ack_spoofer(gr, 1.0, {nr.id()});
  // Observe-only RSSI detector so its recovery does not erase the
  // cross-layer detector's evidence (a rejected spoof never looks
  // MAC-acked); each detector is graded on its own classifications.
  SpoofDetector rssi(1.0);
  rssi.recovery_enabled = false;
  rssi.attach(ns.mac());
  CrossLayerDetector xl(5);
  xl.attach(ns.mac(), *fn.sender);
  WaypointMobility walk(sim.scheduler(), nr.phy(), {{25, 0}, {2, 6}, {18, 3}},
                        3.0);
  if (mobile) walk.start(0);
  sim.run();
  (void)fg;
  Row out;
  const double honest_total =
      static_cast<double>(rssi.false_positives() + rssi.true_negatives());
  out.fp_rate = honest_total > 0 ? rssi.false_positives() / honest_total : 0.0;
  const double spoof_total =
      static_cast<double>(rssi.true_positives() + rssi.false_negatives());
  out.rssi_caught = spoof_total > 0 ? rssi.true_positives() / spoof_total : 0.0;
  out.xl_detected = xl.detected() ? 1.0 : 0.0;
  return out;
}

void run(benchmark::State& state) {
  std::printf(
      "Extension: spoof detection on stationary vs mobile victims (TCP, "
      "BER=2e-4)\n");
  TableWriter table({"victim", "attack", "rssi_fp", "rssi_tp", "xlayer"}, 10);
  table.print_header();
  double mobile_fp = 0.0, mobile_xl = 0.0;
  for (const bool mobile : {false, true}) {
    for (const bool attack : {false, true}) {
      const auto med = median_over_seeds(default_runs(), 3800, [&](std::uint64_t s) {
        const Row r = run_case(mobile, attack, s);
        return std::vector<double>{r.fp_rate, r.rssi_caught, r.xl_detected};
      });
      table.print_row({attack ? 1.0 : 0.0, med[0], med[1], med[2]},
                      mobile ? "mobile" : "static");
      if (mobile && !attack) mobile_fp = med[0];
      if (mobile && attack) mobile_xl = med[2];
    }
  }
  std::printf(
      "\nMobility sends the RSSI detector's false-positive rate to %.0f%%;\n"
      "the cross-layer detector still convicts the spoofer (%s).\n\n",
      100.0 * mobile_fp, mobile_xl > 0.5 ? "detected" : "missed");
  state.counters["mobile_rssi_fp_rate"] = mobile_fp;
  state.counters["mobile_xlayer_detected"] = mobile_xl;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  register_once("Extension/MobileClientDetection", run);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
