// Extension: detector operating characteristics measured in-simulator
// (companion to Fig 22's synthetic RSSI study).
//
// Part 1 — live ROC of the spoofed-ACK detector: sweep the RSSI threshold
// in a running attack and report true/false positive rates from the
// detector's own confusion counters.
//
// Part 2 — detection latency: how long after the attack starts does each
// GRC detector first fire? (Operationally the number an operator cares
// about.)
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.h"
#include "src/detect/fake_ack_detector.h"
#include "src/detect/grc.h"
#include "src/detect/spoof_detector.h"

using namespace g80211;
using namespace g80211::bench;

namespace {

void roc_part(benchmark::State& state) {
  std::printf(
      "Extension: live ROC of the RSSI spoof detector (TCP, BER=2e-4)\n");
  TableWriter table({"thresh_db", "tp_rate", "fp_rate"});
  table.print_header();
  double tp_1db = 0.0, fp_1db = 0.0;
  for (const double thresh : {0.25, 0.5, 1.0, 2.0, 3.0, 5.0}) {
    const auto med = median_over_seeds(default_runs(), 3900, [&](std::uint64_t s) {
      SimConfig cfg;
      cfg.measure = default_measure();
      cfg.seed = s;
      cfg.default_ber = 2e-4;
      cfg.capture_threshold = 10.0;
      Sim sim(cfg);
      const PairLayout l = pairs_in_range(2);
      Node& ns = sim.add_node(l.senders[0]);
      Node& gs = sim.add_node(l.senders[1]);
      Node& nr = sim.add_node(l.receivers[0]);
      Node& gr = sim.add_node(l.receivers[1]);
      auto fn = sim.add_tcp_flow(ns, nr);
      auto fg = sim.add_tcp_flow(gs, gr);
      sim.make_ack_spoofer(gr, 1.0, {nr.id()});
      SpoofDetector det(thresh);
      det.recovery_enabled = false;  // observe-only: measure classification
      det.attach(ns.mac());
      sim.run();
      (void)fn;
      (void)fg;
      const double spoofs =
          static_cast<double>(det.true_positives() + det.false_negatives());
      const double honest =
          static_cast<double>(det.false_positives() + det.true_negatives());
      return std::vector<double>{
          spoofs > 0 ? det.true_positives() / spoofs : 0.0,
          honest > 0 ? det.false_positives() / honest : 0.0};
    });
    table.print_row({thresh, med[0], med[1]});
    if (thresh == 1.0) {
      tp_1db = med[0];
      fp_1db = med[1];
    }
  }
  std::printf("at the paper's 1 dB operating point: TP=%.2f FP=%.3f\n\n", tp_1db,
              fp_1db);
  state.counters["tp_rate_1db"] = tp_1db;
  state.counters["fp_rate_1db"] = fp_1db;
}

void latency_part(benchmark::State& state) {
  std::printf("Extension: time from attack onset to first detection\n");
  TableWriter table({"detector", "median_ms"}, 14);
  table.print_header();

  // NAV validator vs a 10 ms CTS inflator switching on at t=1s.
  const auto nav_med = median_over_seeds(default_runs(), 3910, [&](std::uint64_t s) {
    SimConfig cfg;
    cfg.warmup = seconds(0);
    cfg.measure = seconds(4);
    cfg.seed = s;
    Sim sim(cfg);
    const PairLayout l = pairs_in_range(2);
    Node& ns = sim.add_node(l.senders[0]);
    Node& gs = sim.add_node(l.senders[1]);
    Node& nr = sim.add_node(l.receivers[0]);
    Node& gr = sim.add_node(l.receivers[1]);
    auto f1 = sim.add_udp_flow(ns, nr);
    auto f2 = sim.add_udp_flow(gs, gr);
    sim.scheduler().at(seconds(1), [&] {
      sim.make_nav_inflator(gr, NavFrameMask::cts_only(), milliseconds(10));
    });
    NavValidator validator(sim.scheduler(), sim.params());
    validator.attach(ns.mac());
    double first_ms = -1.0;
    std::function<void()> poll = [&] {
      if (first_ms < 0 && validator.detections() > 0) {
        first_ms = to_millis(sim.scheduler().now() - seconds(1));
      }
      if (first_ms < 0) sim.scheduler().after(microseconds(500), poll);
    };
    sim.scheduler().at(seconds(1), poll);
    sim.run();
    (void)f1;
    (void)f2;
    return std::vector<double>{first_ms};
  });
  table.print_row({nav_med[0]}, "nav");

  // RSSI spoof detector vs a full-rate spoofer switching on at t=1s.
  const auto spoof_med = median_over_seeds(default_runs(), 3920, [&](std::uint64_t s) {
    SimConfig cfg;
    cfg.warmup = seconds(0);
    cfg.measure = seconds(6);
    cfg.seed = s;
    cfg.default_ber = 2e-4;
    cfg.capture_threshold = 10.0;
    Sim sim(cfg);
    const PairLayout l = pairs_in_range(2);
    Node& ns = sim.add_node(l.senders[0]);
    Node& gs = sim.add_node(l.senders[1]);
    Node& nr = sim.add_node(l.receivers[0]);
    Node& gr = sim.add_node(l.receivers[1]);
    auto f1 = sim.add_tcp_flow(ns, nr);
    auto f2 = sim.add_tcp_flow(gs, gr);
    sim.scheduler().at(seconds(1), [&] {
      sim.make_ack_spoofer(gr, 1.0, {nr.id()});
    });
    SpoofDetector det(1.0);
    det.attach(ns.mac());
    double first_ms = -1.0;
    std::function<void()> poll = [&] {
      if (first_ms < 0 && det.true_positives() > 0) {
        first_ms = to_millis(sim.scheduler().now() - seconds(1));
      }
      if (first_ms < 0) sim.scheduler().after(microseconds(500), poll);
    };
    sim.scheduler().at(seconds(1), poll);
    sim.run();
    (void)f1;
    (void)f2;
    return std::vector<double>{first_ms};
  });
  table.print_row({spoof_med[0]}, "spoof");

  std::printf(
      "\nThe NAV validator convicts on the first inflated frame; the RSSI\n"
      "detector needs the first spoof that actually reaches the sender.\n\n");
  state.counters["nav_detect_ms"] = nav_med[0];
  state.counters["spoof_detect_ms"] = spoof_med[0];
}

void run(benchmark::State& state) {
  roc_part(state);
  latency_part(state);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  register_once("Extension/DetectionQuality", run);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
