#include "bench/perf_counters.h"

#if defined(__linux__)

#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cstring>
#include <initializer_list>

namespace g80211::bench {

namespace {

int open_counter(std::uint32_t type, std::uint64_t config) {
  perf_event_attr attr;
  std::memset(&attr, 0, sizeof(attr));
  attr.type = type;
  attr.size = sizeof(attr);
  attr.config = config;
  attr.disabled = 1;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  // pid=0, cpu=-1: this thread, any CPU. Counters are opened standalone
  // rather than as one group: a grouped open fails atomically when the PMU
  // is missing, which would also take down the software task clock.
  return static_cast<int>(
      ::syscall(SYS_perf_event_open, &attr, 0, -1, -1, 0));
}

std::uint64_t read_counter(int fd) {
  std::uint64_t value = 0;
  if (fd >= 0 && ::read(fd, &value, sizeof(value)) != sizeof(value)) {
    value = 0;
  }
  return value;
}

void for_fd(int fd, unsigned long request) {
  if (fd >= 0) ::ioctl(fd, request, 0);
}

}  // namespace

PerfCounters::PerfCounters() {
  cycles_.fd = open_counter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_CPU_CYCLES);
  instructions_.fd =
      open_counter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_INSTRUCTIONS);
  branches_.fd =
      open_counter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_INSTRUCTIONS);
  branch_misses_.fd =
      open_counter(PERF_TYPE_HARDWARE, PERF_COUNT_HW_BRANCH_MISSES);
  // Nanoseconds of on-CPU time, maintained by the kernel scheduler — no
  // PMU required, so this one survives VMs that refuse the four above.
  task_clock_.fd = open_counter(PERF_TYPE_SOFTWARE, PERF_COUNT_SW_TASK_CLOCK);
}

PerfCounters::~PerfCounters() {
  for (Counter* c :
       {&cycles_, &instructions_, &branches_, &branch_misses_, &task_clock_}) {
    if (c->fd >= 0) ::close(c->fd);
  }
}

void PerfCounters::start() {
  for (Counter* c :
       {&cycles_, &instructions_, &branches_, &branch_misses_, &task_clock_}) {
    for_fd(c->fd, PERF_EVENT_IOC_RESET);
    for_fd(c->fd, PERF_EVENT_IOC_ENABLE);
  }
}

void PerfCounters::stop() {
  for (Counter* c :
       {&cycles_, &instructions_, &branches_, &branch_misses_, &task_clock_}) {
    for_fd(c->fd, PERF_EVENT_IOC_DISABLE);
  }
  read_into_totals();
}

void PerfCounters::read_into_totals() {
  for (Counter* c :
       {&cycles_, &instructions_, &branches_, &branch_misses_, &task_clock_}) {
    c->total += read_counter(c->fd);
  }
}

bool PerfCounters::hw_available() const {
  return cycles_.fd >= 0 && instructions_.fd >= 0 && branches_.fd >= 0 &&
         branch_misses_.fd >= 0;
}

bool PerfCounters::task_clock_available() const { return task_clock_.fd >= 0; }

}  // namespace g80211::bench

#else  // !__linux__

namespace g80211::bench {

PerfCounters::PerfCounters() = default;
PerfCounters::~PerfCounters() = default;
void PerfCounters::start() {}
void PerfCounters::stop() {}
void PerfCounters::read_into_totals() {}
bool PerfCounters::hw_available() const { return false; }
bool PerfCounters::task_clock_available() const { return false; }

}  // namespace g80211::bench

#endif
