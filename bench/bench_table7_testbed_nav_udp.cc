// Table VII (testbed): UDP throughput when GR injects CTS/ACK frames with
// the maximum NAV (32767 us), for three configurations matching the
// paper's rows: ACK inflation without RTS/CTS, CTS inflation with RTS/CTS,
// and CTS+ACK inflation with RTS/CTS. 802.11a at 6 Mbps, as in the testbed.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.h"

using namespace g80211;
using namespace g80211::bench;

namespace {

struct Row {
  const char* label;
  bool rts_cts;
  NavFrameMask mask;
};

void run(benchmark::State& state) {
  std::printf("Table VII (testbed emulation): UDP, max NAV inflation (802.11a)\n");
  std::printf("%42s %9s %9s %9s %9s\n", "", "noGR_R1", "noGR_R2", "GR", "NR");

  const Row rows[] = {
      {"no RTS/CTS, inflated NAV on ACK", false, NavFrameMask::ack_only()},
      {"with RTS/CTS, inflated NAV on CTS", true, NavFrameMask::cts_only()},
      {"with RTS/CTS, inflated NAV on CTS+ACK", true,
       {.cts = true, .ack = true}},
  };
  double greedy_cts = 0.0, normal_cts = 0.0;
  int seed = 2400;
  for (const Row& row : rows) {
    PairsSpec honest;
    honest.tcp = false;
    honest.cfg = base_config(Standard::A80211);
    honest.cfg.rts_cts = row.rts_cts;
    const auto base = median_pair_goodputs(honest, default_runs(), seed++);

    PairsSpec attacked = honest;
    attacked.customize = [&row](Sim& sim, std::vector<Node*>&,
                                std::vector<Node*>& rx) {
      sim.make_nav_inflator(*rx[1], row.mask, WifiParams::kMaxNav);
    };
    const auto att = median_pair_goodputs(attacked, default_runs(), seed++);
    std::printf("%42s %9.3f %9.3f %9.3f %9.3f\n", row.label, base[0], base[1],
                att[1], att[0]);
    if (row.rts_cts && !row.mask.ack) {
      greedy_cts = att[1];
      normal_cts = att[0];
    }
  }
  std::printf("\n");
  state.counters["greedy_mbps_cts_row"] = greedy_cts;
  state.counters["normal_mbps_cts_row"] = normal_cts;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  register_once("Table7/TestbedNavUdp", run);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
