// Extension: the city-scale campaign (ROADMAP item 2) — how far does one
// greedy receiver's damage reach in a dense deployment, and how does GRC
// coverage change the answer? A 12x12-AP street grid (144 APs, 1152
// stations; neighbouring cells contend) with churn, roaming and a mixed
// cbr/web/tcp population is described as a scenario-spec TOML document,
// compiled by WorldBuilder, and run with streaming per-window metrics —
// memory stays constant however long the campaign runs.
//
// Reported:
//   * damage radius — per-ring honest per-station goodput vs distance to
//     the nearest greedy receiver (rings of ring_m = 25 m), and the radius
//     at which stations recover to >= 80% of the far-field level;
//   * GRC-coverage sweep — honest goodput and detections as greedy
//     fraction x GRC coverage varies over the same grid.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

#include "bench/common.h"
#include "src/scenario/spec/world_builder.h"

using namespace g80211;
using namespace g80211::bench;
using namespace g80211::spec;

namespace {

std::string city_toml(double greedy_fraction, double grc_coverage) {
  const bool quick = quick_mode();
  char buf[1024];
  std::snprintf(buf, sizeof(buf),
                "[world]\n"
                "name = \"city\"\n"
                "seed = 5\n"
                "warmup_s = 1.0\n"
                "measure_s = %s\n"
                "[aps]\n"
                "cols = %d\n"
                "rows = %d\n"
                "pitch_m = 60.0\n"
                "grc_coverage = %.3f\n"
                "[stations]\n"
                "per_ap = %d\n"
                "radius_m = 20.0\n"
                "[churn]\n"
                "fraction = 0.2\n"
                "mean_on_s = 4.0\n"
                "mean_off_s = 3.0\n"
                "[roaming]\n"
                "fraction = 0.1\n"
                "[[traffic]]\n"
                "class = \"cbr\"\n"
                "weight = 1.0\n"
                "rate_mbps = 1.0\n"
                "[[traffic]]\n"
                "class = \"web\"\n"
                "weight = 2.0\n"
                "rate_mbps = 2.0\n"
                "burst_s = 1.0\n"
                "idle_s = 2.0\n"
                "[[traffic]]\n"
                "class = \"tcp\"\n"
                "weight = 1.0\n"
                "[greedy]\n"
                "fraction = %.3f\n"
                "nav_inflation = 1.0\n"
                "ack_spoofing = 1.0\n"
                "fake_ack = 1.0\n"
                "[metrics]\n"
                "window_s = 1.0\n"
                "ring_m = 25.0\n",
                quick ? "2.0" : "5.0", quick ? 4 : 12, quick ? 4 : 12,
                grc_coverage, quick ? 4 : 8, greedy_fraction);
  return buf;
}

struct CityResult {
  BuiltWorld::Summary summary;
  std::vector<std::int64_t> ring_stations;
  int stations = 0;
};

CityResult run_city(double greedy_fraction, double grc_coverage) {
  const WorldSpec spec =
      parse_world_spec_text(city_toml(greedy_fraction, grc_coverage), "city");
  BuiltWorld world(spec);
  world.run();
  CityResult out;
  out.summary = world.summary();
  out.ring_stations = out.summary.ring_stations;
  out.stations = spec.num_stations();
  return out;
}

void run(benchmark::State& state) {
  std::printf("Extension: city-scale hotspot campaign (%s)\n\n",
              quick_mode() ? "quick: 16 APs" : "144 APs, 1152 stations");

  // --- damage radius: greedy receivers at large, no GRC -------------------
  const CityResult dmg = run_city(0.05, 0.0);
  std::printf("Damage radius (greedy fraction 0.05, no GRC):\n");
  TableWriter rings({"ring_m", "stations", "mbps_per_stn"}, 12);
  rings.print_header();
  double far_field = 0.0;
  for (std::size_t r = 0; r < dmg.summary.ring_mbps.size(); ++r) {
    const double stations =
        static_cast<double>(dmg.ring_stations[r] > 0 ? dmg.ring_stations[r] : 1);
    const double per_station = dmg.summary.ring_mbps[r].mean() / stations;
    rings.print_row({static_cast<double>(dmg.ring_stations[r]), per_station},
                    std::to_string(static_cast<int>(r * 25)) + "-" +
                        std::to_string(static_cast<int>((r + 1) * 25)));
    far_field = per_station;  // outermost ring = far-field reference
  }
  double damage_radius_m = 0.0;
  for (std::size_t r = 0; r < dmg.summary.ring_mbps.size(); ++r) {
    const double stations =
        static_cast<double>(dmg.ring_stations[r] > 0 ? dmg.ring_stations[r] : 1);
    if (dmg.summary.ring_mbps[r].mean() / stations < 0.8 * far_field) {
      damage_radius_m = static_cast<double>((r + 1) * 25);
    }
  }
  std::printf("\nDamage radius (last ring below 80%% of far field): %.0f m\n\n",
              damage_radius_m);

  // --- greedy fraction x GRC coverage sweep -------------------------------
  std::printf("GRC-coverage sweep (honest goodput, Mb/s):\n");
  TableWriter sweep({"greedy", "coverage", "honest", "greedy_gp", "detect"}, 10);
  sweep.print_header();
  double baseline = 0.0, attacked = 0.0, protected_all = 0.0;
  for (const double greedy : {0.0, 0.02, 0.05}) {
    for (const double coverage : {0.0, 0.5, 1.0}) {
      if (greedy == 0.0 && coverage > 0.0) continue;  // GRC idles w/o attack
      const CityResult r = run_city(greedy, coverage);
      const double detections = static_cast<double>(
          r.summary.nav_detections + r.summary.spoof_detections);
      sweep.print_row({coverage, r.summary.honest_mbps.mean(),
                       r.summary.greedy_mbps.mean(), detections},
                      std::to_string(greedy).substr(0, 4));
      if (greedy == 0.0) baseline = r.summary.honest_mbps.mean();
      if (greedy == 0.05 && coverage == 0.0) attacked = r.summary.honest_mbps.mean();
      if (greedy == 0.05 && coverage == 1.0) {
        protected_all = r.summary.honest_mbps.mean();
      }
    }
  }
  std::printf(
      "\nHonest goodput: %.1f Mb/s clean, %.1f under attack, %.1f with GRC "
      "everywhere.\n\n",
      baseline, attacked, protected_all);

  state.counters["damage_radius_m"] = damage_radius_m;
  state.counters["honest_baseline_mbps"] = baseline;
  state.counters["honest_attacked_mbps"] = attacked;
  state.counters["honest_grc_mbps"] = protected_all;
  state.counters["stations"] = static_cast<double>(dmg.stations);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  register_once("Extension/CityCampaign", run);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
