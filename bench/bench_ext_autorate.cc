// Extension (the paper's future work, Section IX): greedy receivers under
// ARF rate adaptation.
//
//  * Fake ACKs backfire: ARF needs honest MAC feedback to find the
//    channel's rate cliff; a receiver that fake-ACKs corrupted frames
//    pins its own sender above the cliff and destroys its own goodput —
//    "the damage of faking ACKs may reduce under autorate".
//  * ACK spoofing gets worse: the victim's sender, fed spoofed ACKs,
//    never steps its rate down to what the victim can decode —
//    "the damage of spoofing ACKs can increase with auto-rate".
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.h"

using namespace g80211;
using namespace g80211::bench;

namespace {

void fake_ack_part(benchmark::State& state) {
  std::printf(
      "Extension A: fake ACKs vs ARF (single flow, channel cliff at 5.5 Mbps)\n");
  TableWriter table({"mode", "goodput", "arf_ups"}, 14);
  table.print_header();
  double honest_goodput = 0.0, faked_goodput = 0.0;
  for (const bool fake : {false, true}) {
    const auto med = median_over_seeds(default_runs(), 3300, [&](std::uint64_t s) {
      SimConfig cfg;
      cfg.rts_cts = false;
      cfg.measure = default_measure();
      cfg.seed = s;
      Sim sim(cfg);
      const PairLayout l = pairs_in_range(1);
      Node& gs = sim.add_node(l.senders[0]);
      Node& gr = sim.add_node(l.receivers[0]);
      auto f = sim.add_udp_flow(gs, gr);
      gs.mac().enable_auto_rate(1.0);
      sim.channel().error_model().set_link_rate_limit(gs.id(), gr.id(), 5.5);
      if (fake) sim.make_fake_acker(gr, 1.0);
      sim.run();
      const auto* ctrl = gs.mac().rate_controller(gr.id());
      return std::vector<double>{f.goodput_mbps(),
                                 static_cast<double>(ctrl ? ctrl->ups() : 0)};
    });
    table.print_row({fake ? 1.0 : 0.0, med[0], med[1]});
    (fake ? faked_goodput : honest_goodput) = med[0];
  }
  std::printf(
      "Faking ACKs under ARF costs the cheater %.0f%% of its own goodput.\n\n",
      100.0 * (1.0 - faked_goodput / honest_goodput));
  state.counters["fake_self_damage_pct"] =
      100.0 * (1.0 - faked_goodput / honest_goodput);
}

void spoof_part(benchmark::State& state) {
  std::printf(
      "Extension B: ACK spoofing vs ARF (victim's link cliff at 5.5 Mbps)\n");
  TableWriter table({"mode", "victim", "greedy"}, 14);
  table.print_header();
  double honest_victim = 0.0, blinded_victim = 0.0;
  for (const bool attack : {false, true}) {
    const auto med = median_over_seeds(default_runs(), 3310, [&](std::uint64_t s) {
      SimConfig cfg;
      cfg.rts_cts = false;
      cfg.capture_threshold = 10.0;
      cfg.measure = default_measure();
      cfg.seed = s;
      Sim sim(cfg);
      const PairLayout l = pairs_in_range(2);
      Node& ns = sim.add_node(l.senders[0]);
      Node& gs = sim.add_node(l.senders[1]);
      Node& nr = sim.add_node(l.receivers[0]);
      Node& gr = sim.add_node(l.receivers[1]);
      auto fn = sim.add_udp_flow(ns, nr, 6.0);
      auto fg = sim.add_udp_flow(gs, gr, 6.0);
      ns.mac().enable_auto_rate(1.0);
      sim.channel().error_model().set_link_rate_limit(ns.id(), nr.id(), 5.5);
      if (attack) sim.make_ack_spoofer(gr, 1.0, {nr.id()});
      sim.run();
      return std::vector<double>{fn.goodput_mbps(), fg.goodput_mbps()};
    });
    table.print_row({attack ? 1.0 : 0.0, med[0], med[1]});
    (attack ? blinded_victim : honest_victim) = med[0];
  }
  std::printf(
      "Spoofing also blinds the victim's rate control: victim %.3f -> %.3f "
      "Mbps.\n\n",
      honest_victim, blinded_victim);
  state.counters["victim_honest"] = honest_victim;
  state.counters["victim_blinded"] = blinded_victim;
}

void run(benchmark::State& state) {
  fake_ack_part(state);
  spoof_part(state);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  register_once("Extension/AutoRateMisbehavior", run);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
