// Fig 21: CDF of |RSSI - median RSSI| over all links of the 16-node
// office-floor measurement study (synthetic substitute calibrated to the
// paper's headline: ~95% of samples within 1 dB of the link median).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.h"
#include "src/analysis/stats.h"
#include "src/rssi/rssi_trace.h"

using namespace g80211;
using namespace g80211::bench;

namespace {

void run(benchmark::State& state) {
  std::printf("Fig 21: CDF of |RSSI - median RSSI| over all links (16 nodes)\n");
  RssiStudyConfig cfg;
  const RssiStudy study(cfg, Rng(2700));
  const auto cdf = empirical_cdf(study.deviations());

  TableWriter table({"dev_db", "cdf"});
  table.print_header();
  for (const double x : {0.1, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0, 5.0}) {
    table.print_row({x, cdf_at(cdf, x)});
  }
  const double within_1db = cdf_at(cdf, 1.0);
  std::printf("fraction within 1 dB: %.3f (paper: ~0.95)\n\n", within_1db);
  state.counters["fraction_within_1db"] = within_1db;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  register_once("Fig21/RssiDeviationCdf", run);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
