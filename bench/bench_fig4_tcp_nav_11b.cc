// Fig 4: goodput of two competing TCP flows under NAV inflation on (a) CTS,
// (b) RTS+CTS, (c) ACK, (d) all frames (802.11b). A TCP receiver transmits
// RTS/DATA frames for its TCP ACKs, so all four masks are available to it.
//
// Each sub-figure is one campaign; within it every inflation point and
// seed runs concurrently on the G80211_JOBS pool with sweep-ordered
// aggregation, so tables and exported metrics are thread-count invariant.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.h"

using namespace g80211;
using namespace g80211::bench;

namespace {

void sweep(const char* title, const char* figure, NavFrameMask mask,
           Standard standard, std::uint64_t base_seed, double* greedy_at_2ms) {
  Campaign campaign(figure, {"normal_mbps", "greedy_mbps"});
  for (const Time inflation :
       {microseconds(0), microseconds(500), milliseconds(1), milliseconds(2),
        milliseconds(5), milliseconds(10), milliseconds(20), milliseconds(31)}) {
    PairsSpec spec;
    spec.tcp = true;
    spec.cfg = base_config(standard);
    spec.customize = [mask, inflation](Sim& sim, std::vector<Node*>&,
                                       std::vector<Node*>& rx) {
      if (inflation > 0) sim.make_nav_inflator(*rx[1], mask, inflation);
    };
    char label[32];
    std::snprintf(label, sizeof(label), "%g", to_millis(inflation));
    campaign.add(pairs_goodput_job(label, to_millis(inflation), std::move(spec),
                                   default_runs(), base_seed));
  }
  const auto points = campaign.run();

  std::printf("%s\n", title);
  TableWriter table({"nav_inc_ms", "normal_mbps", "greedy_mbps"});
  table.print_header();
  print_points(table, points);
  std::printf("\n");
  if (greedy_at_2ms != nullptr) {
    for (const auto& pt : points) {
      if (pt.x == 2.0) *greedy_at_2ms = pt.median[1];
    }
  }
}

void run(benchmark::State& state) {
  double greedy_all_2ms = 0.0;
  sweep("Fig 4(a): TCP, inflated CTS NAV (802.11b)", "fig4a_tcp_nav_cts",
        NavFrameMask::cts_only(), Standard::B80211, 400, nullptr);
  sweep("Fig 4(b): TCP, inflated RTS+CTS NAV (802.11b)", "fig4b_tcp_nav_rtscts",
        NavFrameMask::rts_and_cts(), Standard::B80211, 410, nullptr);
  sweep("Fig 4(c): TCP, inflated ACK NAV (802.11b)", "fig4c_tcp_nav_ack",
        NavFrameMask::ack_only(), Standard::B80211, 420, nullptr);
  sweep("Fig 4(d): TCP, inflated NAV on all frames (802.11b)",
        "fig4d_tcp_nav_all", NavFrameMask::all(), Standard::B80211, 430,
        &greedy_all_2ms);
  state.counters["greedy_mbps_allframes_2ms"] = greedy_all_2ms;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  register_once("Fig4/TcpNav80211b", run);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
