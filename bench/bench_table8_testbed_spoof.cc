// Table VIII (testbed): emulated ACK spoofing — exactly as the paper did
// it, the sender's MAC is modified to skip retransmissions toward the
// normal receiver (a successfully spoofed ACK makes the sender move on),
// while the greedy receiver's traffic retransmits as usual. One AP, two
// TCP receivers, 802.11a without RTS/CTS, mild inherent loss (the paper's
// office channel was not clean; without loss there is nothing to spoof).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.h"

using namespace g80211;
using namespace g80211::bench;

namespace {

void run(benchmark::State& state) {
  std::printf(
      "Table VIII (testbed emulation): spoofed-ACK via disabled retransmission\n");
  std::printf("%28s %10s %10s\n", "", "flow1", "flow2");
  const double ber =
      ErrorModel::ber_for_fer(0.15, ErrorModel::error_len(FrameType::kData, 1064));

  SharedApSpec honest;
  honest.n_clients = 2;
  honest.tcp = true;
  honest.cfg = base_config(Standard::A80211);
  honest.cfg.rts_cts = false;
  honest.cfg.default_ber = ber;
  const auto base = median_shared_ap_goodputs(honest, default_runs(), 2500);
  std::printf("%28s %10.3f %10.3f\n", "no GR (NR1 / NR2)", base[0], base[1]);

  SharedApSpec attacked = honest;
  attacked.customize = [](Sim&, Node& ap, std::vector<Node*>& clients) {
    // Emulate GR (clients[1]) spoofing NR's (clients[0]) ACKs.
    ap.mac().disable_retransmissions_to(clients[0]->id());
  };
  const auto att = median_shared_ap_goodputs(attacked, default_runs(), 2510);
  std::printf("%28s %10.3f %10.3f\n", "1 GR (NR / GR)", att[0], att[1]);
  std::printf("\n");

  state.counters["normal_mbps_under_attack"] = att[0];
  state.counters["greedy_mbps_under_attack"] = att[1];
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  register_once("Table8/TestbedSpoofEmulation", run);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
