// Fig 13: two TCP flows under 0, 1, or 2 ACK-spoofing receivers at
// BER=2e-4. With two spoofers, each disables the other's MAC-layer
// retransmissions, losses flood up to TCP on both flows, and total goodput
// drops — more so at higher greedy percentages.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.h"

using namespace g80211;
using namespace g80211::bench;

namespace {

void run(benchmark::State& state) {
  std::printf("Fig 13: 0/1/2 ACK spoofers, BER=2e-4 (TCP, 802.11b)\n");
  TableWriter table({"gp_pct", "n_greedy", "flow1_mbps", "flow2_mbps", "total"});
  table.print_header();

  double total_honest = 0.0, total_mutual = 0.0;
  for (const int gp : {50, 100}) {
    for (const int n_greedy : {0, 1, 2}) {
      PairsSpec spec;
      spec.tcp = true;
      spec.cfg = base_config();
      spec.cfg.default_ber = 2e-4;
      spec.cfg.capture_threshold = 10.0;
      spec.customize = [&](Sim& sim, std::vector<Node*>&, std::vector<Node*>& rx) {
        if (n_greedy >= 1) sim.make_ack_spoofer(*rx[1], gp / 100.0, {rx[0]->id()});
        if (n_greedy >= 2) sim.make_ack_spoofer(*rx[0], gp / 100.0, {rx[1]->id()});
      };
      const auto med = median_pair_goodputs(spec, default_runs(), 1400 + n_greedy);
      const double total = med[0] + med[1];
      table.print_row({static_cast<double>(gp), static_cast<double>(n_greedy),
                       med[0], med[1], total});
      if (gp == 100 && n_greedy == 0) total_honest = total;
      if (gp == 100 && n_greedy == 2) total_mutual = total;
    }
  }
  std::printf("\n");
  state.counters["total_honest"] = total_honest;
  state.counters["total_mutual_spoofing"] = total_mutual;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  register_once("Fig13/SpoofNumGreedy", run);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
