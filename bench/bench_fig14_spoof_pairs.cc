// Fig 14: one ACK-spoofing receiver competing with a varying number of
// normal receivers, (a) all sharing one AP, (b) each with its own AP
// (TCP, 802.11b, BER=2e-4). Head-of-line blocking at the shared AP narrows
// the greedy/normal gap.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <set>

#include "bench/common.h"

using namespace g80211;
using namespace g80211::bench;

namespace {

void run(benchmark::State& state) {
  double gap_separate_4 = 0.0, gap_shared_4 = 0.0;

  std::printf("Fig 14(a): spoofing GR + n normal receivers, one shared AP\n");
  TableWriter shared_table({"n_normal", "avg_normal", "greedy_mbps"});
  shared_table.print_header();
  for (const int n_normal : {1, 2, 4, 7}) {
    SharedApSpec spec;
    spec.n_clients = n_normal + 1;
    spec.spoof_layout = true;
    spec.tcp = true;
    spec.cfg = base_config();
    spec.cfg.default_ber = 2e-4;
    spec.cfg.capture_threshold = 10.0;
    spec.customize = [&](Sim& sim, Node&, std::vector<Node*>& clients) {
      std::set<int> victims;
      for (int i = 0; i + 1 < static_cast<int>(clients.size()); ++i) {
        victims.insert(clients[i]->id());
      }
      sim.make_ack_spoofer(*clients.back(), 1.0, victims);
    };
    const auto med = median_shared_ap_goodputs(spec, default_runs(), 1500 + n_normal);
    double normal_sum = 0.0;
    for (int i = 0; i < n_normal; ++i) normal_sum += med[i];
    const double avg_normal = normal_sum / n_normal;
    shared_table.print_row({static_cast<double>(n_normal), avg_normal, med.back()});
    if (n_normal == 4) gap_shared_4 = med.back() - avg_normal;
  }
  std::printf("\n");

  std::printf("Fig 14(b): spoofing GR + n normal receivers, separate APs\n");
  TableWriter sep_table({"n_normal", "avg_normal", "greedy_mbps"});
  sep_table.print_header();
  for (const int n_normal : {1, 2, 4, 7}) {
    PairsSpec spec;
    spec.n_pairs = n_normal + 1;
    spec.tcp = true;
    spec.cfg = base_config();
    spec.cfg.default_ber = 2e-4;
    spec.cfg.capture_threshold = 10.0;
    spec.customize = [&](Sim& sim, std::vector<Node*>&, std::vector<Node*>& rx) {
      std::set<int> victims;
      for (int i = 0; i + 1 < static_cast<int>(rx.size()); ++i) {
        victims.insert(rx[i]->id());
      }
      sim.make_ack_spoofer(*rx.back(), 1.0, victims);
    };
    const auto med = median_pair_goodputs(spec, default_runs(), 1550 + n_normal);
    double normal_sum = 0.0;
    for (int i = 0; i < n_normal; ++i) normal_sum += med[i];
    const double avg_normal = normal_sum / n_normal;
    sep_table.print_row({static_cast<double>(n_normal), avg_normal, med.back()});
    if (n_normal == 4) gap_separate_4 = med.back() - avg_normal;
  }
  std::printf("\n");

  state.counters["gap_shared_ap_4normal"] = gap_shared_4;
  state.counters["gap_separate_ap_4normal"] = gap_separate_4;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  register_once("Fig14/SpoofVsNumPairs", run);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
