// Fig 16: remote TCP senders (wireless BER=2e-5) with the greedy
// percentage and the wired latency both varying. The paper highlights that
// around 200 ms, spoofing only 20% of sniffed DATA frames already costs
// the victim most of its goodput.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.h"

using namespace g80211;
using namespace g80211::bench;

namespace {

void run(benchmark::State& state) {
  double victim_gp20_200ms = 0.0, victim_gp0_200ms = 0.0;
  for (const Time latency : {milliseconds(2), milliseconds(50), milliseconds(200),
                             milliseconds(400)}) {
    std::printf("Fig 16: remote senders, GP sweep, wired latency %g ms\n",
                to_millis(latency));
    TableWriter table({"gp_pct", "normal_mbps", "greedy_mbps"});
    table.print_header();
    for (const int gp : {0, 20, 40, 60, 80, 100}) {
      RemoteSpec spec;
      spec.wired_latency = latency;
      spec.cfg = base_config();
      spec.cfg.default_ber = 2e-5;
      spec.cfg.capture_threshold = 10.0;
      spec.cfg.measure = std::max<Time>(default_measure(), 100 * latency);
      spec.customize = [&](Sim& sim, Node&, std::vector<Node*>& clients) {
        if (gp > 0) {
          sim.make_ack_spoofer(*clients[1], gp / 100.0, {clients[0]->id()});
        }
      };
      const auto med = median_over_seeds(
          default_runs(), 1700 + gp, [&](std::uint64_t s) { return run_remote(spec, s); });
      table.print_row({static_cast<double>(gp), med[0], med[1]});
      if (latency == milliseconds(200) && gp == 0) victim_gp0_200ms = med[0];
      if (latency == milliseconds(200) && gp == 20) victim_gp20_200ms = med[0];
    }
    std::printf("\n");
  }
  state.counters["victim_loss_pct_gp20_200ms"] =
      victim_gp0_200ms > 0
          ? 100.0 * (victim_gp0_200ms - victim_gp20_200ms) / victim_gp0_200ms
          : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  register_once("Fig16/RemoteGreedyPct", run);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
