// Table III: bit error rate and the corresponding frame error rate for
// each frame type, from the calibrated analytic error model
// (FER = 1-(1-BER)^L with L = 38/44/112/1136; see src/phy/error_model.h).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.h"
#include "src/analysis/fer.h"

using namespace g80211;
using namespace g80211::bench;

namespace {

void run(benchmark::State& state) {
  std::printf("Table III: BER and the corresponding FER\n");
  std::printf("%10s %12s %12s %12s %12s\n", "BER", "ACK/CTS", "RTS", "TCP ACK",
              "TCP Data");
  for (const FerRow& row : table3()) {
    std::printf("%10.2e %12.3e %12.3e %12.3e %12.3e\n", row.ber, row.ack_cts,
                row.rts, row.tcp_ack, row.tcp_data);
  }
  std::printf("\n");
  const FerRow last = table3_row(8e-4);
  state.counters["tcp_data_fer_at_8e-4"] = last.tcp_data;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  register_once("Table3/BerToFer", run);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
