// Table IV: contention-window size of the normal and greedy flows' senders
// under hidden-terminal losses with GP=100%, for 802.11b and 802.11a —
// faking ACKs pins GS near CWmin while NS's window balloons; with two
// greedy receivers both senders sit low (and collide constantly).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.h"

using namespace g80211;
using namespace g80211::bench;

namespace {

void run(benchmark::State& state) {
  std::printf("Table IV: sender average CW under hidden terminals (GP=100%%)\n");
  std::printf("%10s %10s %10s %10s %10s %10s %10s\n", "", "noGR_S1", "noGR_S2",
              "1GR_NS", "1GR_GS", "2GR_S1", "2GR_S2");
  double cw_ns_1gr_b = 0.0, cw_gs_1gr_b = 0.0;
  for (const Standard std_ : {Standard::B80211, Standard::A80211}) {
    std::vector<double> cells;
    for (const int n_greedy : {0, 1, 2}) {
      HiddenSpec spec;
      spec.standard = std_;
      if (n_greedy >= 1) spec.fake_gp_r2 = 1.0;
      if (n_greedy >= 2) spec.fake_gp_r1 = 1.0;
      const auto med =
          median_over_seeds(default_runs(), 2000 + n_greedy, [&](std::uint64_t s) {
            const auto r = run_hidden(spec, s);
            return std::vector<double>{r.cw_s1, r.cw_s2};
          });
      cells.push_back(med[0]);
      cells.push_back(med[1]);
      if (std_ == Standard::B80211 && n_greedy == 1) {
        cw_ns_1gr_b = med[0];
        cw_gs_1gr_b = med[1];
      }
    }
    std::printf("%10s %10.1f %10.1f %10.1f %10.1f %10.1f %10.1f\n",
                std_ == Standard::B80211 ? "802.11b" : "802.11a", cells[0],
                cells[1], cells[2], cells[3], cells[4], cells[5]);
  }
  std::printf("\n");
  state.counters["cw_NS_1GR_11b"] = cw_ns_1gr_b;
  state.counters["cw_GS_1GR_11b"] = cw_gs_1gr_b;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  register_once("Table4/FakeAckContentionWindows", run);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
