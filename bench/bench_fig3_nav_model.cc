// Fig 3: the analytical model of Equations (1) and (2) versus the measured
// RTS sending ratio between GS-GR and NS-NR under CTS NAV inflation
// (saturated UDP, 802.11b). The model is evaluated by plugging in the
// empirical contention-window distributions collected from each sender's
// Backoff, exactly as the paper does.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "bench/common.h"
#include "src/analysis/nav_model.h"

using namespace g80211;
using namespace g80211::bench;

namespace {

void run(benchmark::State& state) {
  std::printf(
      "Fig 3: Eq(1)/(2) model vs measured RTS sending ratio (GS share)\n");
  TableWriter table({"nav_slots", "model_ratio", "measured", "abs_err"});
  table.print_header();

  double worst_err = 0.0;
  const Time slot = WifiParams::b11().slot;
  for (const int v : {0, 2, 4, 8, 12, 16, 20, 24, 28, 31}) {
    PairsSpec spec;
    spec.tcp = false;
    spec.cfg = base_config();
    spec.cfg.measure = 2 * default_measure();  // extra samples for the CW hist
    spec.customize = [v, slot](Sim& sim, std::vector<Node*>&,
                               std::vector<Node*>& rx) {
      if (v > 0) sim.make_nav_inflator(*rx[1], NavFrameMask::cts_only(), v * slot);
    };
    const auto med = median_over_seeds(default_runs(), 300, [&](std::uint64_t s) {
      SimConfig cfg = spec.cfg;
      cfg.seed = s;
      Sim sim(cfg);
      const PairLayout l = pairs_in_range(2);
      Node& ns = sim.add_node(l.senders[0]);
      Node& gs = sim.add_node(l.senders[1]);
      Node& nr = sim.add_node(l.receivers[0]);
      Node& gr = sim.add_node(l.receivers[1]);
      auto fn = sim.add_udp_flow(ns, nr);
      auto fg = sim.add_udp_flow(gs, gr);
      if (v > 0) sim.make_nav_inflator(gr, NavFrameMask::cts_only(), v * slot);
      sim.run();
      const auto probs = nav_inflation_send_prob(
          normalize_histogram(gs.mac().backoff().cw_histogram()),
          normalize_histogram(ns.mac().backoff().cw_histogram()), v);
      const double measured =
          static_cast<double>(gs.mac().stats().rts_sent) /
          static_cast<double>(gs.mac().stats().rts_sent +
                              ns.mac().stats().rts_sent);
      (void)fn;
      (void)fg;
      return std::vector<double>{probs.gs_ratio(), measured};
    });
    const double err = std::abs(med[0] - med[1]);
    table.print_row({static_cast<double>(v), med[0], med[1], err});
    worst_err = std::max(worst_err, err);
  }
  std::printf("\n");
  state.counters["worst_abs_err"] = worst_err;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  register_once("Fig3/NavInflationModel", run);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
