// Extension: the paper's Section IV claim, quantified — "only a small NAV
// increase is required for GR to starve other flows due to additional
// data traffic, whereas a large NAV inflation is required to launch the
// type of DOS considered in [2]" (Bellardo & Savage CTS jamming).
//
// A greedy receiver's sender refills every reserved gap with fresh data,
// so each tiny inflation chains into the next exchange. A traffic-less
// jammer must cover the whole timeline out of its injected Durations, so
// it needs NAV ~ period to have any effect — and gains nothing for it.
// GRC's NAV validation also blunts the jammer: each rogue CTS gets
// clamped to the 1500-byte-MTU exchange bound.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.h"
#include "src/detect/grc.h"
#include "src/greedy/cts_jammer.h"

using namespace g80211;
using namespace g80211::bench;

namespace {

struct Outcome {
  double victim = 0.0;       // competing honest goodput (Mbps)
  double attacker = 0.0;     // attacker's own goodput (greedy receiver only)
  double airtime = 0.0;      // attacker's own transmission airtime fraction
};

Outcome run_greedy(Time inflation, std::uint64_t seed) {
  SimConfig cfg;
  cfg.measure = default_measure();
  cfg.seed = seed;
  Sim sim(cfg);
  const PairLayout l = pairs_in_range(2);
  Node& ns = sim.add_node(l.senders[0]);
  Node& gs = sim.add_node(l.senders[1]);
  Node& nr = sim.add_node(l.receivers[0]);
  Node& gr = sim.add_node(l.receivers[1]);
  auto fn = sim.add_udp_flow(ns, nr);
  auto fg = sim.add_udp_flow(gs, gr);
  sim.make_nav_inflator(gr, NavFrameMask::cts_only(), inflation);
  sim.run();
  return {fn.goodput_mbps(), fg.goodput_mbps(), 0.0};
}

Outcome run_jammer(Time nav, bool grc_on, std::uint64_t seed) {
  SimConfig cfg;
  cfg.measure = default_measure();
  cfg.seed = seed;
  Sim sim(cfg);
  const PairLayout l = pairs_in_range(2);
  Node& s1 = sim.add_node(l.senders[0]);
  Node& s2 = sim.add_node(l.senders[1]);
  Node& r1 = sim.add_node(l.receivers[0]);
  Node& r2 = sim.add_node(l.receivers[1]);
  Node& attacker = sim.add_node({1, 4});
  auto f1 = sim.add_udp_flow(s1, r1);
  auto f2 = sim.add_udp_flow(s2, r2);
  CtsJammer::Config jc;
  jc.nav = nav;
  CtsJammer jammer(sim.scheduler(), attacker, jc);
  jammer.start(0);
  Grc grc(sim.scheduler(), sim.params(), {.spoof_detection = false});
  if (grc_on) {
    for (Node* n : {&s1, &s2, &r1, &r2}) grc.protect(n->mac());
  }
  sim.run();
  return {f1.goodput_mbps() + f2.goodput_mbps(), 0.0, jammer.airtime_fraction()};
}

void run(benchmark::State& state) {
  std::printf(
      "Extension: greedy receiver vs [2]-style CTS jammer (competing UDP)\n");
  TableWriter table({"attacker", "nav_ms", "victim", "att_gain", "airtime%"}, 12);
  table.print_header();

  auto med3 = [](const std::function<Outcome(std::uint64_t)>& fn,
                 std::uint64_t base) {
    return median_over_seeds(default_runs(), base, [&](std::uint64_t s) {
      const Outcome o = fn(s);
      return std::vector<double>{o.victim, o.attacker, o.airtime};
    });
  };

  double greedy_victim = 0.0, jam_small_victim = 0.0, jam_big_victim = 0.0;
  {
    const auto m = med3([](std::uint64_t s) { return run_greedy(microseconds(600), s); }, 3600);
    table.print_row({0.6, m[0], m[1], 100.0 * m[2]}, "greedy_rcvr");
    greedy_victim = m[0];
  }
  {
    const auto m = med3([](std::uint64_t s) { return run_jammer(microseconds(600), false, s); }, 3610);
    table.print_row({0.6, m[0], m[1], 100.0 * m[2]}, "jammer");
    jam_small_victim = m[0];
  }
  {
    const auto m = med3([](std::uint64_t s) { return run_jammer(WifiParams::kMaxNav, false, s); }, 3620);
    table.print_row({32.767, m[0], m[1], 100.0 * m[2]}, "jammer");
    jam_big_victim = m[0];
  }
  {
    const auto m = med3([](std::uint64_t s) { return run_jammer(WifiParams::kMaxNav, true, s); }, 3630);
    table.print_row({32.767, m[0], m[1], 100.0 * m[2]}, "jammer+GRC");
  }
  std::printf(
      "\nThe greedy receiver starves its competitor with 0.6 ms inflations\n"
      "(victim %.2f Mbps) while PROFITING; the jammer needs the 32.8 ms\n"
      "maximum to hurt anyone (0.6 ms: victims keep %.2f Mbps) and GRC\n"
      "claws most of it back.\n\n",
      greedy_victim, jam_small_victim);
  state.counters["greedy_victim_0.6ms"] = greedy_victim;
  state.counters["jammer_victim_0.6ms"] = jam_small_victim;
  state.counters["jammer_victim_max"] = jam_big_victim;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  register_once("Extension/DosComparison", run);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
