// Extension: MAC-level fragmentation.
//
// Part 1 — the classic trade-off the feature exists for: smaller
// fragments slash the per-frame error probability, so past a BER around
// 1e-3 (where whole-MSDU frames start dying faster than the retry limit
// can save them) fragmentation wins — while on clean channels its
// per-fragment PLCP/ACK overhead only hurts.
//
// Part 2 — the detection angle: fragments are the one case where an
// honest ACK carries a nonzero NAV. The paper's strict "ACK NAV must be 0"
// rule misfires on every fragment burst; the fragmentation-aware validator
// accepts honest bursts while still catching a greedy receiver that hides
// NAV inflation inside them.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.h"
#include "src/detect/nav_validator.h"

using namespace g80211;
using namespace g80211::bench;

namespace {

void throughput_part(benchmark::State& state) {
  std::printf("Extension: fragmentation threshold vs goodput (single UDP flow)\n");
  TableWriter table({"frag_bytes", "ber=0", "ber=6e-4", "ber=1.5e-3"}, 12);
  table.print_header();
  double clean_full = 0.0, lossy_full = 0.0, lossy_frag = 0.0;
  for (const int threshold : {0, 256, 532}) {
    std::vector<double> row{static_cast<double>(threshold)};
    for (const double ber : {0.0, 6e-4, 1.5e-3}) {
      const auto med = median_over_seeds(default_runs(), 3500, [&](std::uint64_t s) {
        SimConfig cfg;
        cfg.rts_cts = false;
        cfg.default_ber = ber;
        cfg.measure = default_measure();
        cfg.seed = s;
        Sim sim(cfg);
        const PairLayout l = pairs_in_range(1);
        Node& tx = sim.add_node(l.senders[0]);
        Node& rx = sim.add_node(l.receivers[0]);
        auto f = sim.add_udp_flow(tx, rx);
        if (threshold > 0) tx.mac().set_fragmentation_threshold(threshold);
        sim.run();
        return std::vector<double>{f.goodput_mbps()};
      });
      row.push_back(med[0]);
      if (threshold == 0 && ber == 0.0) clean_full = med[0];
      if (threshold == 0 && ber == 1.5e-3) lossy_full = med[0];
      if (threshold == 532 && ber == 1.5e-3) lossy_frag = med[0];
    }
    table.print_row(std::vector<double>(row.begin() + 1, row.end()),
                    std::to_string(threshold));
  }
  std::printf(
      "On a clean channel fragmentation only adds overhead; at BER 1.5e-3\n"
      "the 532-byte threshold beats whole-MSDU frames (%0.2f -> %0.2f Mbps).\n\n",
      lossy_full, lossy_frag);
  state.counters["clean_unfragmented"] = clean_full;
  state.counters["lossy_frag_gain"] = lossy_frag - lossy_full;
}

void detection_part(benchmark::State& state) {
  std::printf(
      "Extension: NAV validation under fragmentation (honest vs inflating GR)\n");
  TableWriter table({"scenario", "strict_det", "aware_det"}, 13);
  table.print_header();
  double aware_honest = 0.0, aware_greedy = 0.0;
  for (const bool greedy : {false, true}) {
    const auto med = median_over_seeds(default_runs(), 3510, [&](std::uint64_t s) {
      SimConfig cfg;
      cfg.rts_cts = false;
      cfg.measure = default_measure();
      cfg.seed = s;
      Sim sim(cfg);
      const PairLayout l = pairs_in_range(2);
      Node& ns = sim.add_node(l.senders[0]);
      Node& gs = sim.add_node(l.senders[1]);
      Node& nr = sim.add_node(l.receivers[0]);
      Node& gr = sim.add_node(l.receivers[1]);
      auto f1 = sim.add_udp_flow(ns, nr);
      auto f2 = sim.add_udp_flow(gs, gr);
      ns.mac().set_fragmentation_threshold(532);
      gs.mac().set_fragmentation_threshold(532);
      if (greedy) {
        sim.make_nav_inflator(gr, NavFrameMask::ack_only(), milliseconds(5));
      }
      NavValidator strict(sim.scheduler(), sim.params());
      NavValidator aware(sim.scheduler(), sim.params());
      aware.assume_fragmentation = true;
      strict.attach(nr.mac());
      aware.attach(ns.mac());
      sim.run();
      (void)f1;
      (void)f2;
      return std::vector<double>{static_cast<double>(strict.detections()),
                                 static_cast<double>(aware.detections())};
    });
    table.print_row({med[0], med[1]}, greedy ? "greedy" : "honest");
    (greedy ? aware_greedy : aware_honest) = med[1];
  }
  std::printf(
      "The strict rule cries wolf on honest bursts; the aware rule is\n"
      "silent on honest traffic (%0.0f) yet still catches the inflator "
      "(%0.0f detections).\n\n",
      aware_honest, aware_greedy);
  state.counters["aware_false_positives"] = aware_honest;
  state.counters["aware_true_detections"] = aware_greedy;
}

void run(benchmark::State& state) {
  throughput_part(state);
  detection_part(state);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  register_once("Extension/Fragmentation", run);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
