// Table VI (testbed): TCP throughput when GR inflates the NAV in the RTS
// frames it sends for its TCP ACKs, to the 32767 us maximum. The paper ran
// this on MadWiFi at a fixed 6 Mbps 802.11a rate; we run the identical
// scenario on the simulator's 802.11a PHY. Expected shape: a fair split
// without the greedy receiver; near-total starvation of the normal
// receiver with it.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.h"

using namespace g80211;
using namespace g80211::bench;

namespace {

void run(benchmark::State& state) {
  std::printf("Table VI (testbed emulation): GR inflates RTS NAV for TCP ACKs\n");
  std::printf("%28s %10s %10s\n", "", "flow1", "flow2");

  PairsSpec honest;
  honest.tcp = true;
  honest.cfg = base_config(Standard::A80211);
  const auto base = median_pair_goodputs(honest, default_runs(), 2300);
  std::printf("%28s %10.3f %10.3f\n", "no GR (NR1 / NR2)", base[0], base[1]);

  PairsSpec attacked = honest;
  attacked.customize = [](Sim& sim, std::vector<Node*>&, std::vector<Node*>& rx) {
    NavFrameMask mask;
    mask.rts = true;
    sim.make_nav_inflator(*rx[1], mask, WifiParams::kMaxNav);
  };
  const auto att = median_pair_goodputs(attacked, default_runs(), 2310);
  std::printf("%28s %10.3f %10.3f\n", "1 GR (NR / GR)", att[0], att[1]);
  std::printf("\n");

  state.counters["normal_mbps_under_attack"] = att[0];
  state.counters["greedy_mbps_under_attack"] = att[1];
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  register_once("Table6/TestbedNavTcp", run);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
