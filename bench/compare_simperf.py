#!/usr/bin/env python3
"""Perf-regression gate for the simulation engine.

Diffs a fresh run of the perf benches against the committed baseline
(BENCH_simperf.json at the repo root) and fails on slowdowns beyond the
threshold (default 15%).

Usage:
    # run one or more bench binaries and compare the merged result
    python3 bench/compare_simperf.py build/bench/bench_ext_simperf \\
        build/bench/bench_ext_monitor

    # or compare pre-recorded --benchmark_format=json outputs
    python3 bench/compare_simperf.py fresh.json

    options: --baseline PATH (default: BENCH_simperf.json next to the
    repo root), --threshold FRACTION (default 0.15), --warn-only (report
    regressions but exit 0 — for CI runners whose hardware differs from
    the baseline's)

Exit status: 0 when every benchmark is within threshold, 1 on regression
or build-type mismatch, 2 on usage/IO errors, 3 when the baseline file
does not exist (a fresh checkout or machine with no recorded baseline —
record one with --update, which works without a pre-existing file). CI
and scripts can tell "no baseline yet" (3: record one) apart from "the
engine got slower" (1: fix or justify it). Absolute times vary across
machines — the gate is meant to compare runs on the *same* machine (e.g.
before/after a change, or CI runners of one type); refresh the baseline
with --update after an intentional engine change. The run's context is
checked against the baseline's: a build-type mismatch (g80211_build_type,
stamped from CMAKE_BUILD_TYPE) voids the comparison and fails hard unless
--warn-only, since debug-vs-release deltas say nothing about the code;
a CPU-count mismatch only warns. When perf counters were available the
table also shows cycles/event from the hotspot attribution run ('-' when
the host exposes no PMU).
"""

import argparse
import json
import os
import re
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_BASELINE = os.path.join(REPO_ROOT, "BENCH_simperf.json")


def load_benchmarks(doc):
    """name -> {"ms": real_time in ms, "cyc": cycles_per_event or None,
    "bmiss": branch_miss_rate or None} from a google-benchmark JSON
    document. Repeated entries for one name (from
    --benchmark_repetitions) collapse to the fastest: the minimum is
    the repetition least disturbed by the OS, so comparing minima measures
    the code rather than the scheduler."""
    out = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        unit = b.get("time_unit", "ns")
        scale = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}[unit]
        ms = b["real_time"] * scale
        prev = out.get(b["name"])
        if prev is None or ms < prev["ms"]:
            out[b["name"]] = {"ms": ms, "cyc": b.get("cycles_per_event"),
                              "bmiss": b.get("branch_miss_rate")}
    return out


def fmt_cyc(value):
    """cycles/event column: '-' when the counter was unavailable."""
    return f"{value:.0f}" if value is not None else "-"


def fmt_bmiss(value):
    """branch-miss-rate column: '-' when the counter was unavailable.

    Report-only (like cycles/event): attribution for a human reading the
    table, never an input to the pass/fail decision — hosts without a PMU
    must gate identically to hosts with one."""
    return f"{value:.2%}" if value is not None else "-"


def effective_threshold(name, base_threshold, num_cpus):
    """Per-benchmark tolerance.

    Multi-threaded benchmarks (BM_MonitorIngest/N, BM_ShardedHotspot/N)
    run N worker threads; on a host with fewer cores than threads the
    measurement is dominated by OS scheduling of oversubscribed threads,
    which swings tens of percent between runs of identical code. Triple
    the tolerance there so the gate stays meaningful for the
    single-threaded engine benches without being flaky on small
    containers. On a host with >= N cores the normal threshold applies.
    """
    m = re.search(r"/(\d+)(/|$)", name)
    if (m and num_cpus and int(m.group(1)) > num_cpus
            and ("Monitor" in name or "Sharded" in name)):
        return base_threshold * 3
    return base_threshold


def fresh_run(path):
    """Run a bench binary (or read a JSON file) and return its document."""
    if path.endswith(".json"):
        with open(path) as f:
            return json.load(f)
    # Three repetitions per benchmark, randomly interleaved so they sample
    # different time windows (back-to-back reps would all land inside the
    # same noise burst); load_benchmarks keeps the fastest of each, which
    # strips most single-core timing noise.
    cmd = [path, "--benchmark_format=json", "--benchmark_repetitions=3",
           "--benchmark_enable_random_interleaving=true"]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        raise RuntimeError(f"bench run failed: {' '.join(cmd)}")
    return json.loads(proc.stdout)


def fresh_runs(paths):
    """Merge several bench documents: first context wins (same machine,
    same build — check_context still compares it against the baseline),
    benchmark lists concatenate. Duplicate benchmark names across targets
    are a caller error and are rejected."""
    merged = {}
    seen = set()
    for path in paths:
        doc = fresh_run(path)
        names = {b["name"] for b in doc.get("benchmarks", [])}
        # A name may repeat *within* one document (--benchmark_repetitions);
        # only a collision across targets is a caller error.
        clash = names & seen
        if clash:
            raise RuntimeError(
                f"duplicate benchmark {sorted(clash)[0]!r} from {path}")
        seen |= names
        if not merged:
            merged = doc
            continue
        merged.setdefault("benchmarks", []).extend(doc.get("benchmarks", []))
    return merged


def check_context(baseline_doc, fresh_doc):
    """Compare the two runs' environments.

    Returns (hard, soft) mismatch lists. Build type is a *hard* mismatch:
    a debug-vs-release delta says nothing about the code, so main() fails
    the comparison outright unless --warn-only. num_cpus stays soft (the
    engine is single-threaded; core count mostly adds noise, not bias).

    The build type key is g80211_build_type, stamped by the bench binary
    from CMAKE_BUILD_TYPE. Old baselines only carry library_build_type —
    which describes the system libbenchmark, not this tree — so it is
    used as a fallback when either side lacks the project stamp.
    """
    base_ctx = baseline_doc.get("context", {})
    fresh_ctx = fresh_doc.get("context", {})
    hard = []
    soft = []
    key = "g80211_build_type"
    if key not in base_ctx or key not in fresh_ctx:
        key = "library_build_type"
    b, f = base_ctx.get(key), fresh_ctx.get(key)
    if b is not None and f is not None and b != f:
        hard.append(f"{key}: baseline={b!r} fresh={f!r}")
    b, f = base_ctx.get("num_cpus"), fresh_ctx.get("num_cpus")
    if b is not None and f is not None and b != f:
        soft.append(f"num_cpus: baseline={b!r} fresh={f!r}")
    if hard or soft:
        sys.stderr.write(
            "=" * 70 + "\n"
            "compare_simperf: WARNING: baseline and fresh run contexts "
            "differ —\ntimings are NOT comparable; deltas below may be "
            "meaningless:\n")
        for m in hard + soft:
            sys.stderr.write(f"  {m}\n")
        sys.stderr.write(
            "re-record the baseline on this configuration with --update.\n"
            + "=" * 70 + "\n")
    return hard, soft


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("target", nargs="+",
                    help="bench binaries (or their JSON outputs); results "
                         "are merged into one comparison")
    ap.add_argument("--baseline", default=DEFAULT_BASELINE)
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="max tolerated slowdown fraction (default 0.15)")
    ap.add_argument("--update", action="store_true",
                    help="rewrite the baseline's benchmarks with the fresh run")
    ap.add_argument("--warn-only", action="store_true",
                    help="print regressions but always exit 0")
    args = ap.parse_args()

    baseline_doc = {}
    if os.path.exists(args.baseline):
        try:
            with open(args.baseline) as f:
                baseline_doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"compare_simperf: {e}", file=sys.stderr)
            return 2
    elif not args.update:
        # Distinct exit code: "no baseline recorded" is a setup gap, not a
        # perf regression — callers must not conflate the two.
        print(f"compare_simperf: baseline not found: {args.baseline}\n"
              f"record one with: {sys.argv[0]} <target> --update",
              file=sys.stderr)
        return 3

    try:
        fresh_doc = fresh_runs(args.target)
    except (OSError, RuntimeError, json.JSONDecodeError, KeyError) as e:
        print(f"compare_simperf: {e}", file=sys.stderr)
        return 2

    baseline = load_benchmarks(baseline_doc)
    fresh = load_benchmarks(fresh_doc)

    if args.update:
        # Record the fresh run's context too: the baseline must describe
        # the machine/build it was measured on for check_context to work.
        if fresh_doc.get("context"):
            baseline_doc["context"] = fresh_doc["context"]
        # Store one entry per benchmark: the fastest repetition, matching
        # what load_benchmarks compares against.
        best = {}
        for b in fresh_doc.get("benchmarks", []):
            if b.get("run_type") == "aggregate":
                continue
            prev = best.get(b["name"])
            if prev is None or b["real_time"] < prev["real_time"]:
                best[b["name"]] = b
        baseline_doc["benchmarks"] = list(best.values())
        with open(args.baseline, "w") as f:
            json.dump(baseline_doc, f, indent=1)
            f.write("\n")
        print(f"baseline updated: {args.baseline}")
        return 0

    hard_mismatches, soft_mismatches = check_context(baseline_doc, fresh_doc)

    regressions = []
    ncpus = fresh_doc.get("context", {}).get("num_cpus") or 0
    width = max((len(n) for n in baseline), default=10)
    print(f"{'benchmark':<{width}}  {'base ms':>10}  {'fresh ms':>10}  "
          f"{'delta':>8}  {'base cyc/ev':>11}  {'fresh cyc/ev':>12}  "
          f"{'base bmiss':>10}  {'fresh bmiss':>11}")
    for name in sorted(baseline):
        base = baseline[name]
        cur = fresh.get(name)
        cyc_cols = f"  {fmt_cyc(base['cyc']):>11}"
        if cur is None:
            print(f"{name:<{width}}  {base['ms']:>10.3f}  {'MISSING':>10}  "
                  f"{'':>8}{cyc_cols}  {'-':>12}  "
                  f"{fmt_bmiss(base['bmiss']):>10}  {'-':>11}")
            regressions.append((name, "missing from fresh run"))
            continue
        delta = (cur["ms"] - base["ms"]) / base["ms"]
        flag = ""
        if delta > effective_threshold(name, args.threshold, ncpus):
            flag = "  << REGRESSION"
            regressions.append((name, f"{delta:+.1%} slower"))
        print(f"{name:<{width}}  {base['ms']:>10.3f}  {cur['ms']:>10.3f}  "
              f"{delta:>+7.1%}{cyc_cols}  {fmt_cyc(cur['cyc']):>12}  "
              f"{fmt_bmiss(base['bmiss']):>10}  "
              f"{fmt_bmiss(cur['bmiss']):>11}{flag}")
    for name in sorted(set(fresh) - set(baseline)):
        print(f"{name:<{width}}  {'(new)':>10}  {fresh[name]['ms']:>10.3f}  "
              f"{'':>8}  {'-':>11}  {fmt_cyc(fresh[name]['cyc']):>12}  "
              f"{'-':>10}  {fmt_bmiss(fresh[name]['bmiss']):>11}")

    if hard_mismatches and not args.warn_only:
        print("\nFAIL: build-type mismatch between baseline and fresh run — "
              "the comparison is void.\nRe-run against a matching build, or "
              "re-record the baseline with --update\n(or pass --warn-only on "
              "runners that cannot match the baseline build).",
              file=sys.stderr)
        return 1

    if regressions:
        verdict = "WARN" if args.warn_only else "FAIL"
        print(f"\n{verdict}: {len(regressions)} benchmark(s) regressed beyond "
              f"{args.threshold:.0%}:", file=sys.stderr)
        for name, why in regressions:
            print(f"  {name}: {why}", file=sys.stderr)
        if hard_mismatches or soft_mismatches:
            print("(context mismatch above — treat these deltas with "
                  "suspicion)", file=sys.stderr)
        return 0 if args.warn_only else 1
    print(f"\nOK: all benchmarks within {args.threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
