#!/usr/bin/env python3
"""Perf-regression gate for the simulation engine.

Diffs a fresh run of the perf benches against the committed baseline
(BENCH_simperf.json at the repo root) and fails on slowdowns beyond the
threshold (default 15%).

Usage:
    # run one or more bench binaries and compare the merged result
    python3 bench/compare_simperf.py build/bench/bench_ext_simperf \\
        build/bench/bench_ext_monitor

    # or compare pre-recorded --benchmark_format=json outputs
    python3 bench/compare_simperf.py fresh.json

    options: --baseline PATH (default: BENCH_simperf.json next to the
    repo root), --threshold FRACTION (default 0.15), --warn-only (report
    regressions but exit 0 — for CI runners whose hardware differs from
    the baseline's)

Exit status: 0 when every benchmark is within threshold, 1 on regression,
2 on usage/IO errors, 3 when the baseline file does not exist (a fresh
checkout or machine with no recorded baseline — record one with --update,
which works without a pre-existing file). CI and scripts can tell "no
baseline yet" (3: record one) apart from "the engine got slower" (1: fix
or justify it). Absolute times vary across machines — the gate is
meant to compare runs on the *same* machine (e.g. before/after a change,
or CI runners of one type); refresh the baseline with --update after an
intentional engine change. The run's context (CPU count, library build
type) is checked against the baseline's and any mismatch is warned about
loudly: a debug-vs-release or 1-vs-64-core comparison says nothing about
the code.
"""

import argparse
import json
import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DEFAULT_BASELINE = os.path.join(REPO_ROOT, "BENCH_simperf.json")


def load_benchmarks(doc):
    """name -> real_time in ms from a google-benchmark JSON document."""
    out = {}
    for b in doc.get("benchmarks", []):
        if b.get("run_type") == "aggregate":
            continue
        unit = b.get("time_unit", "ns")
        scale = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}[unit]
        out[b["name"]] = b["real_time"] * scale
    return out


def fresh_run(path):
    """Run a bench binary (or read a JSON file) and return its document."""
    if path.endswith(".json"):
        with open(path) as f:
            return json.load(f)
    cmd = [path, "--benchmark_format=json", "--benchmark_repetitions=1"]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        raise RuntimeError(f"bench run failed: {' '.join(cmd)}")
    return json.loads(proc.stdout)


def fresh_runs(paths):
    """Merge several bench documents: first context wins (same machine,
    same build — check_context still compares it against the baseline),
    benchmark lists concatenate. Duplicate benchmark names across targets
    are a caller error and are rejected."""
    merged = {}
    seen = set()
    for path in paths:
        doc = fresh_run(path)
        if not merged:
            merged = doc
            seen = {b["name"] for b in doc.get("benchmarks", [])}
            continue
        for b in doc.get("benchmarks", []):
            if b["name"] in seen:
                raise RuntimeError(
                    f"duplicate benchmark {b['name']!r} from {path}")
            seen.add(b["name"])
            merged.setdefault("benchmarks", []).append(b)
    return merged


def check_context(baseline_doc, fresh_doc):
    """Warn loudly when the two runs' environments are not comparable."""
    base_ctx = baseline_doc.get("context", {})
    fresh_ctx = fresh_doc.get("context", {})
    mismatches = []
    for key in ("num_cpus", "library_build_type"):
        b, f = base_ctx.get(key), fresh_ctx.get(key)
        if b is not None and f is not None and b != f:
            mismatches.append(f"{key}: baseline={b!r} fresh={f!r}")
    if mismatches:
        sys.stderr.write(
            "=" * 70 + "\n"
            "compare_simperf: WARNING: baseline and fresh run contexts "
            "differ —\ntimings are NOT comparable; deltas below may be "
            "meaningless:\n")
        for m in mismatches:
            sys.stderr.write(f"  {m}\n")
        sys.stderr.write(
            "re-record the baseline on this configuration with --update.\n"
            + "=" * 70 + "\n")
    return mismatches


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("target", nargs="+",
                    help="bench binaries (or their JSON outputs); results "
                         "are merged into one comparison")
    ap.add_argument("--baseline", default=DEFAULT_BASELINE)
    ap.add_argument("--threshold", type=float, default=0.15,
                    help="max tolerated slowdown fraction (default 0.15)")
    ap.add_argument("--update", action="store_true",
                    help="rewrite the baseline's benchmarks with the fresh run")
    ap.add_argument("--warn-only", action="store_true",
                    help="print regressions but always exit 0")
    args = ap.parse_args()

    baseline_doc = {}
    if os.path.exists(args.baseline):
        try:
            with open(args.baseline) as f:
                baseline_doc = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            print(f"compare_simperf: {e}", file=sys.stderr)
            return 2
    elif not args.update:
        # Distinct exit code: "no baseline recorded" is a setup gap, not a
        # perf regression — callers must not conflate the two.
        print(f"compare_simperf: baseline not found: {args.baseline}\n"
              f"record one with: {sys.argv[0]} <target> --update",
              file=sys.stderr)
        return 3

    try:
        fresh_doc = fresh_runs(args.target)
    except (OSError, RuntimeError, json.JSONDecodeError, KeyError) as e:
        print(f"compare_simperf: {e}", file=sys.stderr)
        return 2

    baseline = load_benchmarks(baseline_doc)
    fresh = load_benchmarks(fresh_doc)

    if args.update:
        # Record the fresh run's context too: the baseline must describe
        # the machine/build it was measured on for check_context to work.
        if fresh_doc.get("context"):
            baseline_doc["context"] = fresh_doc["context"]
        baseline_doc["benchmarks"] = [
            b for b in fresh_doc.get("benchmarks", [])
            if b.get("run_type") != "aggregate"
        ]
        with open(args.baseline, "w") as f:
            json.dump(baseline_doc, f, indent=1)
            f.write("\n")
        print(f"baseline updated: {args.baseline}")
        return 0

    context_mismatches = check_context(baseline_doc, fresh_doc)

    regressions = []
    width = max((len(n) for n in baseline), default=10)
    print(f"{'benchmark':<{width}}  {'base ms':>10}  {'fresh ms':>10}  {'delta':>8}")
    for name in sorted(baseline):
        base = baseline[name]
        cur = fresh.get(name)
        if cur is None:
            print(f"{name:<{width}}  {base:>10.3f}  {'MISSING':>10}  {'':>8}")
            regressions.append((name, "missing from fresh run"))
            continue
        delta = (cur - base) / base
        flag = ""
        if delta > args.threshold:
            flag = "  << REGRESSION"
            regressions.append((name, f"{delta:+.1%} slower"))
        print(f"{name:<{width}}  {base:>10.3f}  {cur:>10.3f}  {delta:>+7.1%}{flag}")
    for name in sorted(set(fresh) - set(baseline)):
        print(f"{name:<{width}}  {'(new)':>10}  {fresh[name]:>10.3f}")

    if regressions:
        verdict = "WARN" if args.warn_only else "FAIL"
        print(f"\n{verdict}: {len(regressions)} benchmark(s) regressed beyond "
              f"{args.threshold:.0%}:", file=sys.stderr)
        for name, why in regressions:
            print(f"  {name}: {why}", file=sys.stderr)
        if context_mismatches:
            print("(context mismatch above — treat these deltas with "
                  "suspicion)", file=sys.stderr)
        return 0 if args.warn_only else 1
    print(f"\nOK: all benchmarks within {args.threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
