// Ablation (DESIGN.md): the capture effect in the ACK-spoofing scenario.
// The paper's evaluation assumes physical capture resolves simultaneous
// real/spoofed ACKs ("no collision even if both receivers send ACKs").
// With capture disabled, the spoofed ACK collides with the victim's real
// ACK whenever the victim did receive the data — adding a jamming
// component on top of the retransmission suppression, which hurts the
// victim even more (the paper notes the combined attack is strictly
// worse). This bench quantifies that difference.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.h"

using namespace g80211;
using namespace g80211::bench;

namespace {

void run(benchmark::State& state) {
  std::printf("Ablation: ACK spoofing with capture on vs off (TCP, BER=2e-4)\n");
  TableWriter table({"capture", "normal_mbps", "greedy_mbps", "total"});
  table.print_header();

  double victim_capture_on = 0.0, victim_capture_off = 0.0;
  for (const bool capture : {true, false}) {
    PairsSpec spec;
    spec.tcp = true;
    spec.cfg = base_config();
    spec.cfg.default_ber = 2e-4;
    spec.cfg.capture_threshold = capture ? 10.0 : 0.0;
    spec.customize = [](Sim& sim, std::vector<Node*>&, std::vector<Node*>& rx) {
      sim.make_ack_spoofer(*rx[1], 1.0, {rx[0]->id()});
    };
    const auto med = median_pair_goodputs(spec, default_runs(), 3100);
    table.print_row({capture ? 1.0 : 0.0, med[0], med[1], med[0] + med[1]});
    (capture ? victim_capture_on : victim_capture_off) = med[0];
  }
  std::printf(
      "Without capture the spoof also jams the victim's real ACKs; the\n"
      "victim's goodput drops further (%0.3f -> %0.3f Mbps).\n\n",
      victim_capture_on, victim_capture_off);
  state.counters["victim_capture_on"] = victim_capture_on;
  state.counters["victim_capture_off"] = victim_capture_off;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  register_once("Ablation/CaptureEffect", run);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
