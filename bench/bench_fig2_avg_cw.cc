// Fig 2: average contention window of GS and NS as GR inflates its ACK
// NAV (two saturated UDP flows, 802.11b). The paper's shape: GS stays near
// CWmin; NS's average CW climbs while it still competes (its few frames
// see an increasing collision fraction) and falls back to CWmin once it is
// fully starved and cannot send at all.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.h"

using namespace g80211;
using namespace g80211::bench;

namespace {

void run(benchmark::State& state) {
  std::printf("Fig 2: average CW of GS and NS vs ACK NAV inflation (802.11b)\n");
  TableWriter table({"nav_slots", "ns_avg_cw", "gs_avg_cw"});
  table.print_header();

  double peak_ns_cw = 0.0;
  const Time slot = WifiParams::b11().slot;
  for (const int v : {0, 5, 10, 15, 20, 24, 28, 32, 40, 100}) {
    PairsSpec spec;
    spec.tcp = false;
    spec.cfg = base_config();
    spec.customize = [v, slot](Sim& sim, std::vector<Node*>&,
                               std::vector<Node*>& rx) {
      if (v > 0) sim.make_nav_inflator(*rx[1], NavFrameMask::ack_only(), v * slot);
    };
    const auto med = median_over_seeds(default_runs(), 200, [&](std::uint64_t s) {
      const auto r = run_pairs(spec, s);
      return std::vector<double>{r.sender_avg_cw[0], r.sender_avg_cw[1]};
    });
    table.print_row({static_cast<double>(v), med[0], med[1]});
    peak_ns_cw = std::max(peak_ns_cw, med[0]);
  }
  std::printf("\n");
  state.counters["peak_ns_avg_cw"] = peak_ns_cw;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  register_once("Fig2/AvgContentionWindow", run);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
