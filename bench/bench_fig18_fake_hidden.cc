// Fig 18: fake ACKs under hidden-terminal collision losses. Two APs are
// mutually out of carrier-sense range while both receivers hear both, so
// overlapping data frames collide at the receivers. Faking ACKs keeps the
// greedy flow's sender at CWmin; with both receivers greedy, exponential
// backoff is gone entirely and everyone collides more.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.h"

using namespace g80211;
using namespace g80211::bench;

namespace {

void run(benchmark::State& state) {
  std::printf("Fig 18(a): hidden terminals, R2 fakes ACKs, GP sweep\n");
  TableWriter table({"gp_pct", "R1_mbps", "R2_mbps"});
  table.print_header();
  double greedy_gp100 = 0.0;
  for (const int gp : {0, 25, 50, 75, 100}) {
    HiddenSpec spec;
    spec.fake_gp_r2 = gp / 100.0;
    const auto med = median_over_seeds(default_runs(), 1900 + gp, [&](std::uint64_t s) {
      const auto r = run_hidden(spec, s);
      return std::vector<double>{r.goodput_r1, r.goodput_r2};
    });
    table.print_row({static_cast<double>(gp), med[0], med[1]});
    if (gp == 100) greedy_gp100 = med[1];
  }
  std::printf("\n");

  std::printf("Fig 18(b): hidden terminals, both receivers fake ACKs\n");
  TableWriter table2({"gp_pct", "R1_mbps", "R2_mbps"});
  table2.print_header();
  double mutual_gp100 = 0.0;
  for (const int gp : {25, 50, 75, 100}) {
    HiddenSpec spec;
    spec.fake_gp_r1 = gp / 100.0;
    spec.fake_gp_r2 = gp / 100.0;
    const auto med = median_over_seeds(default_runs(), 1950 + gp, [&](std::uint64_t s) {
      const auto r = run_hidden(spec, s);
      return std::vector<double>{r.goodput_r1, r.goodput_r2};
    });
    table2.print_row({static_cast<double>(gp), med[0], med[1]});
    if (gp == 100) mutual_gp100 = med[1];
  }
  std::printf("\n");
  state.counters["greedy_mbps_solo_gp100"] = greedy_gp100;
  state.counters["greedy_mbps_mutual_gp100"] = mutual_gp100;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  register_once("Fig18/FakeAckHiddenTerminals", run);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
