#include "bench/common.h"

#include <memory>

#include "src/capture/capture_writer.h"

namespace g80211::bench {

SimConfig base_config(Standard standard, std::uint64_t seed) {
  SimConfig cfg;
  cfg.standard = standard;
  cfg.rts_cts = true;
  cfg.measure = default_measure();
  cfg.seed = seed;
  return cfg;
}

PairsResult run_pairs(const PairsSpec& spec, std::uint64_t seed) {
  SimConfig cfg = spec.cfg;
  cfg.seed = seed;
  Sim sim(cfg);
  const PairLayout layout = pairs_in_range(spec.n_pairs);
  std::vector<Node*> senders, receivers;
  for (int i = 0; i < spec.n_pairs; ++i) {
    senders.push_back(&sim.add_node(layout.senders[i]));
  }
  for (int i = 0; i < spec.n_pairs; ++i) {
    receivers.push_back(&sim.add_node(layout.receivers[i]));
  }
  std::vector<Sim::TcpFlow> tcp_flows;
  std::vector<Sim::UdpFlow> udp_flows;
  for (int i = 0; i < spec.n_pairs; ++i) {
    if (spec.tcp) {
      tcp_flows.push_back(sim.add_tcp_flow(*senders[i], *receivers[i]));
    } else {
      udp_flows.push_back(
          sim.add_udp_flow(*senders[i], *receivers[i], spec.udp_rate_mbps));
    }
  }
  if (spec.customize) spec.customize(sim, senders, receivers);
  // Per-run capture at the first sender's vantage (the station GRC
  // detectors attach to in the paper's scenarios). Attached after
  // customize() so the capture also journals detector-driven behaviour;
  // attaching draws no randomness, so the run itself is unperturbed.
  std::unique_ptr<CaptureWriter> capture;
  if (!spec.capture_stem.empty() && !senders.empty()) {
    capture = std::make_unique<CaptureWriter>(
        sim.scheduler(), spec.capture_stem + "_seed" + std::to_string(seed));
    capture->attach(senders[0]->mac());
  }
  sim.run();
  if (capture) capture->close();

  PairsResult out;
  for (int i = 0; i < spec.n_pairs; ++i) {
    out.goodput_mbps.push_back(spec.tcp ? tcp_flows[i].goodput_mbps()
                                        : udp_flows[i].goodput_mbps());
    out.sender_avg_cw.push_back(senders[i]->mac().backoff().average_cw());
    out.rts_sent.push_back(
        static_cast<double>(senders[i]->mac().stats().rts_sent));
    if (spec.tcp) out.avg_cwnd.push_back(tcp_flows[i].sender->avg_cwnd());
  }
  return out;
}

std::vector<double> median_pair_goodputs(const PairsSpec& spec, int runs,
                                         std::uint64_t base_seed) {
  return median_over_seeds(runs, base_seed, [&](std::uint64_t seed) {
    return run_pairs(spec, seed).goodput_mbps;
  });
}

SharedApResult run_shared_ap(const SharedApSpec& spec, std::uint64_t seed) {
  SimConfig cfg = spec.cfg;
  cfg.seed = seed;
  Sim sim(cfg);
  const SharedApLayout layout = spec.spoof_layout
                                    ? spoof_shared_ap(spec.n_clients)
                                    : shared_ap(spec.n_clients);
  Node& ap = sim.add_node(layout.ap);
  std::vector<Node*> clients;
  for (int i = 0; i < spec.n_clients; ++i) {
    clients.push_back(&sim.add_node(layout.clients[i]));
  }
  std::vector<Sim::TcpFlow> tcp_flows;
  std::vector<Sim::UdpFlow> udp_flows;
  for (int i = 0; i < spec.n_clients; ++i) {
    if (spec.tcp) {
      tcp_flows.push_back(sim.add_tcp_flow(ap, *clients[i]));
    } else {
      udp_flows.push_back(sim.add_udp_flow(ap, *clients[i], spec.udp_rate_mbps));
    }
  }
  if (spec.customize) spec.customize(sim, ap, clients);
  sim.run();

  SharedApResult out;
  for (int i = 0; i < spec.n_clients; ++i) {
    out.goodput_mbps.push_back(spec.tcp ? tcp_flows[i].goodput_mbps()
                                        : udp_flows[i].goodput_mbps());
    if (spec.tcp) out.avg_cwnd.push_back(tcp_flows[i].sender->avg_cwnd());
  }
  return out;
}

std::vector<double> median_shared_ap_goodputs(const SharedApSpec& spec, int runs,
                                              std::uint64_t base_seed) {
  return median_over_seeds(runs, base_seed, [&](std::uint64_t seed) {
    return run_shared_ap(spec, seed).goodput_mbps;
  });
}

std::vector<double> run_remote(const RemoteSpec& spec, std::uint64_t seed) {
  SimConfig cfg = spec.cfg;
  cfg.seed = seed;
  Sim sim(cfg);
  // Remote-sender scenarios carry ACK spoofing: capture-safe layout.
  const SharedApLayout layout = spoof_shared_ap(2);
  Node& ap = sim.add_node(layout.ap);
  std::vector<Node*> clients;
  clients.push_back(&sim.add_node(layout.clients[0]));
  clients.push_back(&sim.add_node(layout.clients[1]));
  WiredHost& h1 = sim.add_wired_host(ap, spec.wired_latency);
  WiredHost& h2 = sim.add_wired_host(ap, spec.wired_latency);
  auto f1 = sim.add_remote_tcp_flow(h1, ap, *clients[0]);
  auto f2 = sim.add_remote_tcp_flow(h2, ap, *clients[1]);
  if (spec.customize) spec.customize(sim, ap, clients);
  sim.run();
  return {f1.goodput_mbps(), f2.goodput_mbps()};
}

HiddenResult run_hidden(const HiddenSpec& spec, std::uint64_t seed) {
  const HiddenPairsLayout layout = hidden_pairs();
  SimConfig cfg;
  cfg.standard = spec.standard;
  cfg.rts_cts = false;  // the paper disables RTS/CTS to create collisions
  cfg.comm_range_m = layout.comm_range_m;
  cfg.cs_range_m = layout.cs_range_m;
  cfg.measure = spec.measure > 0 ? spec.measure : default_measure();
  cfg.seed = seed;
  Sim sim(cfg);
  Node& s1 = sim.add_node(layout.senders[0]);
  Node& s2 = sim.add_node(layout.senders[1]);
  Node& r1 = sim.add_node(layout.receivers[0]);
  Node& r2 = sim.add_node(layout.receivers[1]);
  auto f1 = sim.add_udp_flow(s1, r1);
  auto f2 = sim.add_udp_flow(s2, r2);
  if (spec.fake_gp_r1 > 0) sim.make_fake_acker(r1, spec.fake_gp_r1);
  if (spec.fake_gp_r2 > 0) sim.make_fake_acker(r2, spec.fake_gp_r2);
  sim.run();
  HiddenResult out;
  out.goodput_r1 = f1.goodput_mbps();
  out.goodput_r2 = f2.goodput_mbps();
  out.cw_s1 = s1.mac().backoff().average_cw();
  out.cw_s2 = s2.mac().backoff().average_cw();
  return out;
}

CampaignJob pairs_goodput_job(std::string label, double x, PairsSpec spec,
                              int runs, std::uint64_t base_seed) {
  CampaignJob job;
  job.label = std::move(label);
  job.x = x;
  job.base_seed = base_seed;
  job.runs = runs;
  job.body = [spec = std::move(spec)](std::uint64_t seed) {
    return run_pairs(spec, seed).goodput_mbps;
  };
  return job;
}

CampaignJob shared_ap_goodput_job(std::string label, double x,
                                  SharedApSpec spec, int runs,
                                  std::uint64_t base_seed) {
  CampaignJob job;
  job.label = std::move(label);
  job.x = x;
  job.base_seed = base_seed;
  job.runs = runs;
  job.body = [spec = std::move(spec)](std::uint64_t seed) {
    return run_shared_ap(spec, seed).goodput_mbps;
  };
  return job;
}

void print_points(const TableWriter& table,
                  const std::vector<CampaignPoint>& points) {
  for (const auto& pt : points) {
    std::vector<double> row;
    row.reserve(pt.median.size() + 1);
    row.push_back(pt.x);
    row.insert(row.end(), pt.median.begin(), pt.median.end());
    table.print_row(row);
  }
}

void register_once(const char* name,
                   const std::function<void(benchmark::State&)>& fn) {
  benchmark::RegisterBenchmark(name, [fn](benchmark::State& state) {
    for (auto _ : state) {
      fn(state);
    }
  })
      ->Iterations(1)
      ->Unit(benchmark::kMillisecond);
}

}  // namespace g80211::bench
