// Ablation: RTS/CTS on vs off across the three misbehaviors.
//
// The paper notes the attack surface differs by mode: CTS NAV inflation
// needs RTS/CTS; ACK NAV inflation works either way; ACK spoofing and
// fake ACKs are access-mode independent. This table verifies each claim
// and shows what basic access costs/buys the attacker.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.h"

using namespace g80211;
using namespace g80211::bench;

namespace {

struct Split {
  double victim = 0.0;
  double greedy = 0.0;
};

Split run_nav(bool rts_cts, NavFrameMask mask, std::uint64_t seed) {
  PairsSpec spec;
  spec.tcp = false;
  spec.cfg = base_config();
  spec.cfg.rts_cts = rts_cts;
  spec.customize = [&](Sim& sim, std::vector<Node*>&, std::vector<Node*>& rx) {
    sim.make_nav_inflator(*rx[1], mask, milliseconds(10));
  };
  const auto med = median_pair_goodputs(spec, default_runs(), seed);
  return {med[0], med[1]};
}

Split run_spoof(bool rts_cts, std::uint64_t seed) {
  PairsSpec spec;
  spec.tcp = true;
  spec.cfg = base_config();
  spec.cfg.rts_cts = rts_cts;
  spec.cfg.default_ber = 2e-4;
  spec.cfg.capture_threshold = 10.0;
  spec.customize = [](Sim& sim, std::vector<Node*>&, std::vector<Node*>& rx) {
    sim.make_ack_spoofer(*rx[1], 1.0, {rx[0]->id()});
  };
  const auto med = median_pair_goodputs(spec, default_runs(), seed);
  return {med[0], med[1]};
}

void run(benchmark::State& state) {
  std::printf("Ablation: attack effectiveness with and without RTS/CTS\n");
  TableWriter table({"attack", "rtscts", "victim", "greedy"}, 12);
  table.print_header();

  const Split cts_on = run_nav(true, NavFrameMask::cts_only(), 4000);
  const Split cts_off = run_nav(false, NavFrameMask::cts_only(), 4010);
  const Split ack_on = run_nav(true, NavFrameMask::ack_only(), 4020);
  const Split ack_off = run_nav(false, NavFrameMask::ack_only(), 4030);
  const Split sp_on = run_spoof(true, 4040);
  const Split sp_off = run_spoof(false, 4050);

  table.print_row({1, cts_on.victim, cts_on.greedy}, "cts_nav");
  table.print_row({0, cts_off.victim, cts_off.greedy}, "cts_nav");
  table.print_row({1, ack_on.victim, ack_on.greedy}, "ack_nav");
  table.print_row({0, ack_off.victim, ack_off.greedy}, "ack_nav");
  table.print_row({1, sp_on.victim, sp_on.greedy}, "spoof");
  table.print_row({0, sp_off.victim, sp_off.greedy}, "spoof");

  std::printf(
      "\nWithout RTS/CTS no CTS frames exist, so CTS inflation is inert\n"
      "(victim keeps %.2f Mbps) — but the same receiver just inflates its\n"
      "ACKs instead (victim %.2f). Spoofing is unaffected by the access\n"
      "mode.\n\n",
      cts_off.victim, ack_off.victim);
  state.counters["victim_cts_inflation_no_rtscts"] = cts_off.victim;
  state.counters["victim_ack_inflation_no_rtscts"] = ack_off.victim;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  register_once("Ablation/RtsCts", run);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
