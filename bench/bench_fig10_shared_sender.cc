// Fig 10: one sender (the AP) serving multiple receivers, one of which
// inflates its CTS NAV. Head-of-line blocking at the shared interface
// queue softens the attack:
//  (a) 2 TCP receivers — the greedy one still gains noticeably;
//  (b) 8 TCP receivers — the gain shrinks further;
//  (c) 2 UDP receivers — both flows lose; the cheater gains nothing.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.h"

using namespace g80211;
using namespace g80211::bench;

namespace {

void sweep(const char* title, int n_clients, bool tcp, std::uint64_t seed,
           double* greedy_at_10ms, double* normal_at_10ms) {
  std::printf("%s\n", title);
  TableWriter table({"nav_inc_ms", "avg_normal", "greedy_mbps"});
  table.print_header();
  for (const Time inflation :
       {microseconds(0), milliseconds(1), milliseconds(2), milliseconds(5),
        milliseconds(10), milliseconds(20), milliseconds(31)}) {
    SharedApSpec spec;
    spec.n_clients = n_clients;
    spec.tcp = tcp;
    spec.udp_rate_mbps = 6.0;
    spec.cfg = base_config();
    spec.customize = [&](Sim& sim, Node&, std::vector<Node*>& clients) {
      if (inflation > 0) {
        sim.make_nav_inflator(*clients.back(), NavFrameMask::cts_only(),
                              inflation);
      }
    };
    const auto med = median_shared_ap_goodputs(spec, default_runs(), seed);
    double normal_sum = 0.0;
    for (int i = 0; i + 1 < n_clients; ++i) normal_sum += med[i];
    const double avg_normal = normal_sum / (n_clients - 1);
    table.print_row({to_millis(inflation), avg_normal, med.back()});
    if (inflation == milliseconds(10)) {
      if (greedy_at_10ms != nullptr) *greedy_at_10ms = med.back();
      if (normal_at_10ms != nullptr) *normal_at_10ms = avg_normal;
    }
  }
  std::printf("\n");
}

void run(benchmark::State& state) {
  double g_tcp2 = 0, n_tcp2 = 0, g_udp = 0, n_udp = 0;
  sweep("Fig 10(a): 1 sender -> 2 TCP receivers, greedy CTS NAV", 2, true, 1000,
        &g_tcp2, &n_tcp2);
  sweep("Fig 10(b): 1 sender -> 8 TCP receivers, greedy CTS NAV", 8, true, 1010,
        nullptr, nullptr);
  sweep("Fig 10(c): 1 sender -> 2 UDP receivers, greedy CTS NAV", 2, false, 1020,
        &g_udp, &n_udp);
  state.counters["tcp2_greedy_minus_normal_10ms"] = g_tcp2 - n_tcp2;
  state.counters["udp_greedy_minus_normal_10ms"] = g_udp - n_udp;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  register_once("Fig10/SharedSender", run);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
