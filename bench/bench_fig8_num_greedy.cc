// Fig 8: two TCP flows under 0, 1, or 2 greedy receivers for CTS NAV
// inflations of 5, 10, 31 ms. With two cheaters, whoever grabs the medium
// first keeps re-reserving it; the split becomes winner-takes-most.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.h"

using namespace g80211;
using namespace g80211::bench;

namespace {

void run(benchmark::State& state) {
  std::printf("Fig 8: goodput under 0/1/2 greedy receivers (TCP, 802.11b)\n");
  TableWriter table({"nav_inc_ms", "n_greedy", "flow1_mbps", "flow2_mbps"});
  table.print_header();

  double victim_with_one_greedy_31 = 0.0;
  for (const Time inflation : {milliseconds(5), milliseconds(10), milliseconds(31)}) {
    for (const int n_greedy : {0, 1, 2}) {
      PairsSpec spec;
      spec.tcp = true;
      spec.cfg = base_config();
      spec.customize = [&](Sim& sim, std::vector<Node*>&, std::vector<Node*>& rx) {
        if (n_greedy >= 1) {
          sim.make_nav_inflator(*rx[1], NavFrameMask::cts_only(), inflation);
        }
        if (n_greedy >= 2) {
          sim.make_nav_inflator(*rx[0], NavFrameMask::cts_only(), inflation);
        }
      };
      const auto med = median_pair_goodputs(spec, default_runs(), 800 + n_greedy);
      table.print_row({to_millis(inflation), static_cast<double>(n_greedy),
                       med[0], med[1]});
      if (n_greedy == 1 && inflation == milliseconds(31)) {
        victim_with_one_greedy_31 = med[0];
      }
    }
  }
  std::printf("\n");
  state.counters["victim_mbps_1greedy_31ms"] = victim_with_one_greedy_31;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  register_once("Fig8/NumGreedyReceivers", run);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
