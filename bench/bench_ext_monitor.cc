// Streaming-monitor ingest throughput: frames/second through the full
// detector suite (NAV validation, RSSI profiling, backoff monitoring,
// spoof/fake-ACK/cross-layer bookkeeping) on the batch path the
// g80211_monitor tool drives — FrameBatch fill + StreamMonitor::process,
// no file I/O. The synthetic stream is honest overheard DATA/ACK traffic,
// so every per-frame detector runs its steady-state path (profile rings,
// backoff EWMAs, NAV checks) and state stays bounded: after the first
// epoch the loop is allocation-free, which is what the /N shard variants
// measure scaling against (one StreamMonitor per shard on a
// runner::ThreadPool, the driver's sharding model; /1 uses the pool's
// inline mode, so it is the true single-thread number).
//
// The committed baseline (BENCH_simperf.json) records frames_per_second;
// compare with bench/compare_simperf.py.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <memory>
#include <vector>

#include "src/mac/durations.h"
#include "src/monitor/engine.h"
#include "src/monitor/frame_batch.h"
#include "src/phy/wifi_params.h"
#include "src/runner/thread_pool.h"

using namespace g80211;

namespace {

constexpr int kOwner = 0;      // the vantage station
constexpr int kPairs = 4;      // stations 1..8 exchanging DATA/ACK
constexpr int kExchanges = 2048;  // per epoch: 2 records each

// Append one epoch of overheard traffic starting at `t`: honest DATA/ACK
// exchanges between the pairs, DIFS + a deterministic backoff gap apart,
// with per-station RSSI. Returns the epoch's end time so consecutive
// epochs form one monotone journal.
Time fill_epoch(FrameBatch& batch, const WifiParams& p, Time t) {
  const int payload = 1024;
  const Time data_air = p.data_tx_time(payload);
  const Time ack_air = p.ack_tx_time();
  for (int i = 0; i < kExchanges; ++i) {
    const int s = 1 + 2 * (i % kPairs);
    const int r = s + 1;
    t += p.difs + ((i * 7) % 32) * p.slot;  // contention gap -> backoff sample

    CapturedFrame data;
    data.start = t;
    data.end = t + data_air;
    data.type = FrameType::kData;
    data.ta = s;
    data.ra = r;
    data.true_tx = s;
    data.duration = Durations::data(p);
    data.seq = i / kPairs;
    data.rssi_dbm = -30.0 - 0.5 * s;
    data.bytes = p.data_mac_overhead_bytes + payload;
    data.rate_mbps = 11.0;
    batch.push(data);

    CapturedFrame ack;
    ack.start = data.end + p.sifs;
    ack.end = ack.start + ack_air;
    ack.type = FrameType::kAck;
    ack.ra = s;
    ack.true_tx = r;
    ack.duration = Durations::ack();
    ack.rssi_dbm = -30.0 - 0.5 * r;
    ack.bytes = p.ack_bytes;
    ack.rate_mbps = 11.0;
    batch.push(ack);

    t = ack.end;
  }
  return t;
}

// One stream pinned to one shard, as MonitorDriver pins them.
struct Shard {
  explicit Shard(const WifiParams& p, MonitorConfig cfg)
      : monitor(p, kOwner, cfg) {}
  StreamMonitor monitor;
  FrameBatch batch;
  Time now = 0;
};

void BM_MonitorIngest(benchmark::State& state) {
  const int shards = static_cast<int>(state.range(0));
  const WifiParams params = WifiParams::b11();
  MonitorConfig cfg;
  cfg.window = seconds(1);

  std::vector<std::unique_ptr<Shard>> streams;
  for (int i = 0; i < shards; ++i) {
    streams.push_back(std::make_unique<Shard>(params, cfg));
  }
  // shards == 1 uses the pool's inline mode: no worker threads, the pure
  // single-shard ingest rate.
  ThreadPool pool(shards == 1 ? 0u : static_cast<unsigned>(shards));

  std::int64_t frames = 0;
  for (auto _ : state) {
    for (const auto& sh : streams) {
      pool.submit([&p = *sh, &params] {
        p.batch.clear();
        p.now = fill_epoch(p.batch, params, p.now);
        p.monitor.process(p.batch);
        // Keep the backlog bounded, as the driver's drain pass does.
        p.monitor.drain_windows();
        p.monitor.drain_alerts();
      });
    }
    pool.wait();
    frames += static_cast<std::int64_t>(2 * kExchanges) * shards;
  }

  for (const auto& sh : streams) {
    benchmark::DoNotOptimize(sh->monitor.verdicts(sh->now));
  }
  state.counters["frames_per_second"] = benchmark::Counter(
      static_cast<double>(frames), benchmark::Counter::kIsRate);
  state.counters["frames_per_iteration"] = benchmark::Counter(
      static_cast<double>(frames), benchmark::Counter::kAvgIterations);
}

// UseRealTime: with worker shards the main thread mostly waits, so rates
// must be against wall clock, not the submitting thread's CPU time.
BENCHMARK(BM_MonitorIngest)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
