// Table IX (testbed): emulated fake ACKs — as in the paper, the sender's
// contention window toward the greedy receiver is pinned at CWmin (a fake
// ACK prevents every doubling), while transmissions toward the normal
// receiver back off normally. One AP, two UDP receivers, 802.11a without
// RTS/CTS, mild inherent loss so backoff actually engages.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.h"

using namespace g80211;
using namespace g80211::bench;

namespace {

void run(benchmark::State& state) {
  std::printf("Table IX (testbed emulation): fake ACKs via pinned CW\n");
  std::printf("%28s %10s %10s\n", "", "flow1", "flow2");
  const double ber =
      ErrorModel::ber_for_fer(0.2, ErrorModel::error_len(FrameType::kData, 1064));

  SharedApSpec honest;
  honest.n_clients = 2;
  honest.tcp = false;
  honest.udp_rate_mbps = 6.0;
  honest.cfg = base_config(Standard::A80211);
  honest.cfg.rts_cts = false;
  honest.cfg.default_ber = ber;
  const auto base = median_shared_ap_goodputs(honest, default_runs(), 2600);
  std::printf("%28s %10.3f %10.3f\n", "no GR (NR1 / NR2)", base[0], base[1]);

  SharedApSpec attacked = honest;
  attacked.customize = [](Sim&, Node& ap, std::vector<Node*>& clients) {
    ap.mac().clamp_cw_to(clients[1]->id());
  };
  const auto att = median_shared_ap_goodputs(attacked, default_runs(), 2610);
  std::printf("%28s %10.3f %10.3f\n", "1 GR (NR / GR)", att[0], att[1]);
  std::printf("\n");

  state.counters["normal_mbps_under_attack"] = att[0];
  state.counters["greedy_mbps_under_attack"] = att[1];
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  register_once("Table9/TestbedFakeAckEmulation", run);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
