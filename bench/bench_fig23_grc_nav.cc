// Fig 23: GRC against inflated CTS NAV over distance. Two sender->receiver
// pairs, 55 m communication / 99 m interference range; pair 2's receiver
// inflates its CTS NAV by 31 ms. Three cases per distance: no greedy
// receiver, greedy without GRC, greedy with GRC on pair 1's stations.
// Expected shape: the attack only bites while R2's CTS reaches pair 1
// (below ~55 m); GRC restores pair 1 — exactly below ~50 m where S1/R1
// also hear S2's RTS and know the true exchange length, and approximately
// (via the 1500-byte MTU bound) beyond that; both flows jump once the
// senders stop interfering (~99 m).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.h"
#include "src/detect/grc.h"

using namespace g80211;
using namespace g80211::bench;

namespace {

struct Point {
  double flow1 = 0.0;
  double flow2 = 0.0;
};

Point run_case(double separation, bool greedy, bool grc_on, bool tcp,
               std::uint64_t seed) {
  const DistanceSweepLayout layout = distance_sweep(separation);
  SimConfig cfg;
  cfg.rts_cts = true;
  cfg.comm_range_m = layout.comm_range_m;
  cfg.cs_range_m = layout.cs_range_m;
  cfg.measure = default_measure();
  cfg.seed = seed;
  Sim sim(cfg);
  Node& s1 = sim.add_node(layout.s1);
  Node& r1 = sim.add_node(layout.r1);
  Node& s2 = sim.add_node(layout.s2);
  Node& r2 = sim.add_node(layout.r2);

  double g1 = 0, g2 = 0;
  Grc grc(sim.scheduler(), sim.params(), {.spoof_detection = false});
  if (greedy) sim.make_nav_inflator(r2, NavFrameMask::cts_only(), milliseconds(31));
  if (grc_on) {
    grc.protect(s1.mac());
    grc.protect(r1.mac());
  }
  if (tcp) {
    auto f1 = sim.add_tcp_flow(s1, r1);
    auto f2 = sim.add_tcp_flow(s2, r2);
    sim.run();
    g1 = f1.goodput_mbps();
    g2 = f2.goodput_mbps();
  } else {
    auto f1 = sim.add_udp_flow(s1, r1);
    auto f2 = sim.add_udp_flow(s2, r2);
    sim.run();
    g1 = f1.goodput_mbps();
    g2 = f2.goodput_mbps();
  }
  return {g1, g2};
}

void sweep(const char* title, bool tcp, std::uint64_t seed, double* recovered) {
  std::printf("%s\n", title);
  TableWriter table({"dist_m", "noGR_f1", "noGR_f2", "GR_f1", "GR_f2",
                     "GRC_f1", "GRC_f2"},
                    9);
  table.print_header();
  for (const double d : {15.0, 25.0, 35.0, 45.0, 55.0, 65.0, 85.0, 95.0, 105.0,
                         115.0}) {
    const auto med = median_over_seeds(default_runs(), seed, [&](std::uint64_t s) {
      const Point none = run_case(d, false, false, tcp, s);
      const Point att = run_case(d, true, false, tcp, s);
      const Point grc = run_case(d, true, true, tcp, s);
      return std::vector<double>{none.flow1, none.flow2, att.flow1,
                                 att.flow2,  grc.flow1,  grc.flow2};
    });
    table.print_row({d, med[0], med[1], med[2], med[3], med[4], med[5]});
    if (d == 25.0 && recovered != nullptr) *recovered = med[4];
  }
  std::printf("\n");
}

void run(benchmark::State& state) {
  double udp_recovered = 0.0;
  sweep("Fig 23(b): UDP goodput vs distance (no GR / GR / GR+GRC)", false, 2900,
        &udp_recovered);
  sweep("Fig 23(c): TCP goodput vs distance (no GR / GR / GR+GRC)", true, 2950,
        nullptr);
  state.counters["udp_victim_mbps_with_grc_25m"] = udp_recovered;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  register_once("Fig23/GrcVsNavInflation", run);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
