// Extension (related-work baseline, paper Section III): greedy *senders*
// and their detection. A sender that draws backoff from a shrunken window
// (Kyasanur & Vaidya's misbehavior) steals bandwidth; a DOMINO-style
// observer (Raya et al.) flags it by measuring actual backoffs on the air.
// This is the sender-side counterpart that motivates why the paper's
// receiver-side attacks — invisible to DOMINO — need their own detectors.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.h"
#include "src/detect/backoff_monitor.h"

using namespace g80211;
using namespace g80211::bench;

namespace {

void run(benchmark::State& state) {
  std::printf(
      "Extension: greedy sender (backoff cheat) vs DOMINO-style detection\n");
  TableWriter table({"cheat", "honest_mbps", "greedy_mbps", "obs_backoff",
                     "flagged"},
                    12);
  table.print_header();

  double greedy_at_01 = 0.0;
  bool flagged_at_01 = false;
  for (const double cheat : {1.0, 0.5, 0.25, 0.1}) {
    const auto med = median_over_seeds(default_runs(), 3400, [&](std::uint64_t s) {
      SimConfig cfg;
      cfg.measure = default_measure();
      cfg.seed = s;
      Sim sim(cfg);
      const PairLayout l = pairs_in_range(2);
      Node& honest_s = sim.add_node(l.senders[0]);
      Node& greedy_s = sim.add_node(l.senders[1]);
      Node& r1 = sim.add_node(l.receivers[0]);
      Node& r2 = sim.add_node(l.receivers[1]);
      auto f1 = sim.add_udp_flow(honest_s, r1);
      auto f2 = sim.add_udp_flow(greedy_s, r2);
      greedy_s.mac().set_backoff_cheat(cheat);
      BackoffMonitor monitor(sim.scheduler(), sim.params());
      monitor.attach(r1.mac());
      sim.run();
      return std::vector<double>{f1.goodput_mbps(), f2.goodput_mbps(),
                                 monitor.observed_backoff(greedy_s.id()),
                                 monitor.flagged(greedy_s.id()) ? 1.0 : 0.0};
    });
    table.print_row({cheat, med[0], med[1], med[2], med[3]});
    if (cheat == 0.1) {
      greedy_at_01 = med[1];
      flagged_at_01 = med[3] > 0.5;
    }
  }
  std::printf(
      "\nA receiver-side cheater never appears in this table: its sender\n"
      "backs off honestly, which is why the paper's GRC detectors exist.\n\n");
  state.counters["greedy_mbps_cheat0.1"] = greedy_at_01;
  state.counters["flagged_cheat0.1"] = flagged_at_01 ? 1.0 : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  register_once("Extension/GreedySenderBaseline", run);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
