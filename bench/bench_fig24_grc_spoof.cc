// Fig 24: GRC against ACK spoofing under a varying loss rate. With the
// RSSI-based detector attached at the victim's sender, flagged ACKs are
// ignored and the MAC retransmits as it should: both flows track the
// no-attack goodput curves.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.h"
#include "src/detect/spoof_detector.h"

using namespace g80211;
using namespace g80211::bench;

namespace {

std::vector<double> run_case(double ber, bool attack, bool grc_on,
                             std::uint64_t seed) {
  SimConfig cfg;
  cfg.default_ber = ber;
  cfg.capture_threshold = 10.0;
  cfg.measure = default_measure();
  cfg.seed = seed;
  Sim sim(cfg);
  const PairLayout l = pairs_in_range(2);
  Node& ns = sim.add_node(l.senders[0]);
  Node& gs = sim.add_node(l.senders[1]);
  Node& nr = sim.add_node(l.receivers[0]);
  Node& gr = sim.add_node(l.receivers[1]);
  auto fn = sim.add_tcp_flow(ns, nr);
  auto fg = sim.add_tcp_flow(gs, gr);
  if (attack) sim.make_ack_spoofer(gr, 1.0, {nr.id()});
  SpoofDetector detector(1.0);
  if (grc_on) detector.attach(ns.mac());
  sim.run();
  return {fn.goodput_mbps(), fg.goodput_mbps()};
}

void run(benchmark::State& state) {
  std::printf("Fig 24: GRC vs ACK spoofing across BER (TCP, 802.11b)\n");
  TableWriter table({"ber", "noGR_R1", "noGR_R2", "GR_R1", "GR_R2", "GRC_R1",
                     "GRC_R2"},
                    9);
  table.print_header();

  double victim_grc_2e4 = 0.0, victim_base_2e4 = 0.0;
  for (const double ber : {0.0, 1e-4, 2e-4, 4e-4, 8e-4, 1.1e-3, 1.4e-3}) {
    const auto med = median_over_seeds(default_runs(), 3000, [&](std::uint64_t s) {
      auto none = run_case(ber, false, false, s);
      auto att = run_case(ber, true, false, s);
      auto grc = run_case(ber, true, true, s);
      return std::vector<double>{none[0], none[1], att[0], att[1], grc[0], grc[1]};
    });
    table.print_row({ber, med[0], med[1], med[2], med[3], med[4], med[5]});
    if (ber == 2e-4) {
      victim_base_2e4 = med[0];
      victim_grc_2e4 = med[4];
    }
  }
  std::printf("\n");
  state.counters["victim_recovery_ratio_2e-4"] =
      victim_base_2e4 > 0 ? victim_grc_2e4 / victim_base_2e4 : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  register_once("Fig24/GrcVsAckSpoofing", run);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
