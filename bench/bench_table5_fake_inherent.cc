// Table V: fake ACKs under inherent wireless-medium losses (both
// sender-receiver pairs within range, random corruption at data frame
// error rates 0.2/0.5/0.8). Unlike the traffic-induced-loss case, backing
// off does not prevent these losses, so faking ACKs recovers the airtime
// exponential backoff was throwing away and mildly improves goodput; with
// two greedy receivers both recover.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.h"

using namespace g80211;
using namespace g80211::bench;

namespace {

// Section V-C "different loss rates on the two flows", exactly as the
// paper pairs the cases: (A) both flows at BER 5e-4, one receiver fakes
// ACKs, vs (B) both honest, one flow loss-free and one at BER 5e-4.
// The faker in (A) should earn roughly what the loss-free receiver earns
// in (B), and its victim roughly what the lossy flow earns in (B) —
// faking ACKs "pretends to be a normal receiver without packet losses".
void asymmetric_equivalence(benchmark::State& state) {
  std::printf(
      "Section V-C: asymmetric loss — faking == pretending to be loss-free\n");
  TableWriter table({"case", "flow1", "flow2"}, 22);
  table.print_header();
  const double ber = 5e-4;
  auto run_case = [&](bool both_lossy, bool r1_fakes) {
    return median_over_seeds(default_runs(), 2150, [&](std::uint64_t s) {
      SimConfig cfg = base_config();
      cfg.rts_cts = false;
      cfg.seed = s;
      Sim sim(cfg);
      const PairLayout l = pairs_in_range(2);
      Node& s1 = sim.add_node(l.senders[0]);
      Node& s2 = sim.add_node(l.senders[1]);
      Node& r1 = sim.add_node(l.receivers[0]);
      Node& r2 = sim.add_node(l.receivers[1]);
      auto f1 = sim.add_udp_flow(s1, r1);
      auto f2 = sim.add_udp_flow(s2, r2);
      if (both_lossy) {
        sim.channel().error_model().set_default_ber(ber);
      } else {
        sim.channel().error_model().set_link_ber(s2.id(), r2.id(), ber);
      }
      if (r1_fakes) sim.make_fake_acker(r1, 1.0);
      sim.run();
      return std::vector<double>{f1.goodput_mbps(), f2.goodput_mbps()};
    });
  };
  // (A) both lossy, flow1's receiver fakes.
  const auto a = run_case(true, true);
  // (B) both honest, flow1 loss-free, flow2 lossy.
  const auto b = run_case(false, false);
  table.print_row({a[0], a[1]}, "A: both lossy, r1 fakes");
  table.print_row({b[0], b[1]}, "B: r1 loss-free, honest");
  std::printf(
      "Victim equivalence is exact (%.2f ~ %.2f). The faker recovers most\n"
      "of the loss-free receiver's CHANNEL SHARE (%.2f vs %.2f) but not its\n"
      "goodput: ~43%% of the frames it pretends to ACK are garbage it paid\n"
      "airtime for.\n\n",
      a[1], b[1], a[0], b[0]);
  state.counters["faker_goodput"] = a[0];
  state.counters["lossfree_equivalent"] = b[0];
}

void run(benchmark::State& state) {
  std::printf("Table V: fake ACKs under inherent losses (UDP, 802.11b)\n");
  TableWriter table({"data_fer", "noGR_R1", "noGR_R2", "1GR_R1", "1GR_R2",
                     "2GR_R1", "2GR_R2"},
                    10);
  table.print_header();

  double greedy_gain_fer05 = 0.0;
  for (const double fer : {0.2, 0.5, 0.8}) {
    const double ber =
        ErrorModel::ber_for_fer(fer, ErrorModel::error_len(FrameType::kData, 1064));
    std::vector<double> cells;
    for (const int n_greedy : {0, 1, 2}) {
      PairsSpec spec;
      spec.tcp = false;
      spec.cfg = base_config();
      spec.cfg.rts_cts = false;
      spec.cfg.default_ber = ber;
      spec.customize = [&](Sim& sim, std::vector<Node*>&, std::vector<Node*>& rx) {
        if (n_greedy >= 1) sim.make_fake_acker(*rx[1], 1.0);
        if (n_greedy >= 2) sim.make_fake_acker(*rx[0], 1.0);
      };
      const auto med = median_pair_goodputs(spec, default_runs(), 2100 + n_greedy);
      cells.push_back(med[0]);
      cells.push_back(med[1]);
      if (fer == 0.5 && n_greedy == 1) greedy_gain_fer05 = med[1];
    }
    table.print_row({fer, cells[0], cells[1], cells[2], cells[3], cells[4],
                     cells[5]});
  }
  std::printf("\n");
  state.counters["greedy_mbps_fer0.5"] = greedy_gain_fer05;
  asymmetric_equivalence(state);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  register_once("Table5/FakeAckInherentLoss", run);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
