// Fig 22: spoofed-ACK detection error rates versus the RSSI threshold.
// False positive: an honest sample farther than the threshold from its own
// link median. False negative: an attacker's sample (drawn from a
// different link to the same receiver) within the threshold of the
// victim's median. The paper picks 1 dB as the operating point.
//
// Campaign-run: each threshold is one job that builds its own
// deterministically-seeded RssiStudy, so points are independent of
// execution order (the study's attack sampling carries a mutable RNG that
// would otherwise make the sweep order-dependent) and run concurrently.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.h"
#include "src/rssi/rssi_trace.h"

using namespace g80211;
using namespace g80211::bench;

namespace {

void run(benchmark::State& state) {
  Campaign campaign("fig22_rssi_threshold", {"false_pos", "false_neg"});
  for (const double t : {0.0, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0, 4.0, 5.0}) {
    char label[32];
    std::snprintf(label, sizeof(label), "%g", t);
    campaign.add(label, t, 2800, 1, [t](std::uint64_t seed) {
      const RssiStudy study(RssiStudyConfig{}, Rng(seed));
      const auto r = study.rates_at(t);
      return std::vector<double>{r.false_positive, r.false_negative};
    });
  }
  const auto points = campaign.run();

  std::printf("Fig 22: detection error rates vs RSSI threshold\n");
  TableWriter table({"thresh_db", "false_pos", "false_neg"});
  table.print_header();
  print_points(table, points);
  double fp_1db = 0.0, fn_1db = 0.0;
  for (const auto& pt : points) {
    if (pt.x == 1.0) {
      fp_1db = pt.median[0];
      fn_1db = pt.median[1];
    }
  }
  std::printf("at 1 dB: FP=%.3f FN=%.3f (paper: both low at 1 dB)\n\n", fp_1db,
              fn_1db);
  state.counters["false_positive_1db"] = fp_1db;
  state.counters["false_negative_1db"] = fn_1db;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  register_once("Fig22/RssiThresholdSweep", run);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
