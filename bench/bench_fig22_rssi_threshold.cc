// Fig 22: spoofed-ACK detection error rates versus the RSSI threshold.
// False positive: an honest sample farther than the threshold from its own
// link median. False negative: an attacker's sample (drawn from a
// different link to the same receiver) within the threshold of the
// victim's median. The paper picks 1 dB as the operating point.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.h"
#include "src/rssi/rssi_trace.h"

using namespace g80211;
using namespace g80211::bench;

namespace {

void run(benchmark::State& state) {
  std::printf("Fig 22: detection error rates vs RSSI threshold\n");
  RssiStudyConfig cfg;
  const RssiStudy study(cfg, Rng(2800));

  TableWriter table({"thresh_db", "false_pos", "false_neg"});
  table.print_header();
  double fp_1db = 0.0, fn_1db = 0.0;
  for (const double t : {0.0, 0.25, 0.5, 0.75, 1.0, 1.5, 2.0, 3.0, 4.0, 5.0}) {
    const auto r = study.rates_at(t);
    table.print_row({t, r.false_positive, r.false_negative});
    if (t == 1.0) {
      fp_1db = r.false_positive;
      fn_1db = r.false_negative;
    }
  }
  std::printf("at 1 dB: FP=%.3f FN=%.3f (paper: both low at 1 dB)\n\n", fp_1db,
              fn_1db);
  state.counters["false_positive_1db"] = fp_1db;
  state.counters["false_negative_1db"] = fn_1db;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  register_once("Fig22/RssiThresholdSweep", run);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
