// Fig 19: one fake-ACKing receiver competes with a varying number of
// normal pairs, all flows experiencing the same inherent loss rate. The
// paper's observations: the greedy impact grows with the loss rate, the
// absolute gap shrinks with more competitors (per-flow goodput falls), but
// the relative gap stays high.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.h"

using namespace g80211;
using namespace g80211::bench;

namespace {

void run(benchmark::State& state) {
  double rel_gap_4pairs = 0.0;
  for (const double fer : {0.2, 0.5}) {
    std::printf("Fig 19: fake ACKs, n pairs, data FER=%.1f (UDP, 802.11b)\n", fer);
    TableWriter table({"n_pairs", "avg_normal", "greedy_mbps", "rel_gap"});
    table.print_header();
    const double ber =
        ErrorModel::ber_for_fer(fer, ErrorModel::error_len(FrameType::kData, 1064));
    for (const int n_pairs : {2, 3, 4, 6, 8}) {
      PairsSpec spec;
      spec.n_pairs = n_pairs;
      spec.tcp = false;
      spec.cfg = base_config();
      spec.cfg.rts_cts = false;
      spec.cfg.default_ber = ber;
      spec.customize = [&](Sim& sim, std::vector<Node*>&, std::vector<Node*>& rx) {
        sim.make_fake_acker(*rx.back(), 1.0);
      };
      const auto med = median_pair_goodputs(spec, default_runs(), 2200 + n_pairs);
      double normal_sum = 0.0;
      for (int i = 0; i + 1 < n_pairs; ++i) normal_sum += med[i];
      const double avg_normal = normal_sum / (n_pairs - 1);
      const double rel = avg_normal > 0 ? med.back() / avg_normal : 0.0;
      table.print_row({static_cast<double>(n_pairs), avg_normal, med.back(), rel});
      if (fer == 0.5 && n_pairs == 4) rel_gap_4pairs = rel;
    }
    std::printf("\n");
  }
  state.counters["relative_gap_4pairs_fer0.5"] = rel_gap_4pairs;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  register_once("Fig19/FakeAckVsNumPairs", run);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
