// Simulator performance: wall-clock cost of simulated time across
// scenario sizes — the practical number a user needs to size parameter
// sweeps. Unlike the per-figure benches (Iterations(1) experiment
// drivers), these are real google-benchmark timings.
//
// A committed baseline lives in BENCH_simperf.json; run
// bench/compare_simperf.py after touching the engine to catch
// regressions (>15% fails).
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string_view>

#include "bench/common.h"
#include "bench/perf_counters.h"
#include "src/scenario/sharded.h"
#include "src/sim/scheduler.h"

using namespace g80211;
using namespace g80211::bench;

namespace {

// Simulated seconds covered by one benchmark iteration of `cfg` — derived
// from the config so changing warmup/measure cannot silently skew the
// sim_seconds_per_wall_second rate.
double sim_span_seconds(const SimConfig& cfg) {
  return to_seconds(cfg.warmup + cfg.measure);
}

// Ready-queue backend under test. G80211_SCHED_BACKEND=heap|wheel lets an
// A/B run compare both backends from one binary (benchmark names stay
// identical so compare_simperf diffs line up); unset means the engine
// default, which is what the committed baseline records.
SchedulerBackend bench_backend() {
  const char* e = std::getenv("G80211_SCHED_BACKEND");
  if (e != nullptr && std::string_view(e) == "heap") {
    return SchedulerBackend::kDaryHeap;
  }
  if (e != nullptr && std::string_view(e) == "wheel") {
    return SchedulerBackend::kTimingWheel;
  }
  return kDefaultSchedulerBackend;
}

// Attach the perf_event_open attribution counters. perf_hw_available is
// always present (0/1) so readers can tell "no PMU on this box" from
// "forgot to record"; the per-event rates appear only when their counter
// was actually live.
void report_perf(benchmark::State& state, const PerfCounters& pc,
                 std::uint64_t events) {
  state.counters["perf_hw_available"] =
      benchmark::Counter(pc.hw_available() ? 1.0 : 0.0);
  if (events == 0) return;
  const double ev = static_cast<double>(events);
  if (pc.hw_available()) {
    state.counters["cycles_per_event"] =
        benchmark::Counter(static_cast<double>(pc.cycles()) / ev);
    state.counters["instructions_per_event"] =
        benchmark::Counter(static_cast<double>(pc.instructions()) / ev);
    if (pc.branches() > 0) {
      state.counters["branch_miss_rate"] = benchmark::Counter(
          static_cast<double>(pc.branch_misses()) /
          static_cast<double>(pc.branches()));
    }
  }
  if (pc.task_clock_available()) {
    state.counters["task_clock_ns_per_event"] =
        benchmark::Counter(static_cast<double>(pc.task_clock_ns()) / ev);
  }
}

void BM_SaturatedUdpPairs(benchmark::State& state) {
  const int n_pairs = static_cast<int>(state.range(0));
  std::uint64_t seed = 1;
  double total = 0.0;
  double sim_seconds = 0.0;
  std::uint64_t events = 0;
  PerfCounters pc;
  for (auto _ : state) {
    SimConfig cfg;
    cfg.measure = seconds(1);
    cfg.warmup = milliseconds(100);
    cfg.seed = seed++;
    cfg.scheduler_backend = bench_backend();
    Sim sim(cfg);
    const PairLayout l = pairs_in_range(n_pairs);
    std::vector<Node*> senders, receivers;
    for (int i = 0; i < n_pairs; ++i) senders.push_back(&sim.add_node(l.senders[i]));
    for (int i = 0; i < n_pairs; ++i) receivers.push_back(&sim.add_node(l.receivers[i]));
    std::vector<Sim::UdpFlow> flows;
    for (int i = 0; i < n_pairs; ++i) {
      flows.push_back(sim.add_udp_flow(*senders[i], *receivers[i]));
    }
    pc.start();
    sim.run();
    pc.stop();
    sim_seconds += sim_span_seconds(cfg);
    events += sim.scheduler().executed();
    for (const auto& f : flows) total += f.goodput_mbps();
    benchmark::DoNotOptimize(total);
  }
  state.counters["sim_seconds_per_wall_second"] =
      benchmark::Counter(sim_seconds, benchmark::Counter::kIsRate);
  state.counters["events_per_second"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
  state.counters["events_executed"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kAvgIterations);
  report_perf(state, pc, events);
}

void BM_TcpPair(benchmark::State& state) {
  std::uint64_t seed = 1;
  double sim_seconds = 0.0;
  std::uint64_t events = 0;
  PerfCounters pc;
  for (auto _ : state) {
    SimConfig cfg;
    cfg.measure = seconds(1);
    cfg.warmup = milliseconds(100);
    cfg.seed = seed++;
    cfg.scheduler_backend = bench_backend();
    Sim sim(cfg);
    const PairLayout l = pairs_in_range(1);
    Node& s = sim.add_node(l.senders[0]);
    Node& r = sim.add_node(l.receivers[0]);
    auto f = sim.add_tcp_flow(s, r);
    pc.start();
    sim.run();
    pc.stop();
    sim_seconds += sim_span_seconds(cfg);
    events += sim.scheduler().executed();
    benchmark::DoNotOptimize(f.goodput_mbps());
  }
  state.counters["sim_seconds_per_wall_second"] =
      benchmark::Counter(sim_seconds, benchmark::Counter::kIsRate);
  state.counters["events_per_second"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
  state.counters["events_executed"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kAvgIterations);
  report_perf(state, pc, events);
}

// Hotspot scale: one saturated AP pushing UDP downlink to N stations, all
// mutually in range — the paper's deployment shape. Every DATA/ACK/RTS/CTS
// fans out to every station, so this is the benchmark where per-frame
// radio math (distance/rx-power per attached PHY) dominates; the link-state
// cache turns that into a flat table walk. Offered load is fixed at
// 24 Mbps total (shared across stations) so packet-generation event cost
// stays constant across N and the sweep isolates the PHY fan-out.
void BM_Hotspot(benchmark::State& state) {
  const int n_stations = static_cast<int>(state.range(0));
  std::uint64_t seed = 1;
  double total = 0.0;
  double sim_seconds = 0.0;
  std::uint64_t events = 0;
  PerfCounters pc;
  for (auto _ : state) {
    SimConfig cfg;
    cfg.measure = seconds(1);
    cfg.warmup = milliseconds(100);
    cfg.seed = seed++;
    cfg.scheduler_backend = bench_backend();
    Sim sim(cfg);
    const SharedApLayout l = shared_ap(n_stations);
    Node& ap = sim.add_node(l.ap);
    std::vector<Sim::UdpFlow> flows;
    flows.reserve(static_cast<std::size_t>(n_stations));
    for (int i = 0; i < n_stations; ++i) {
      Node& sta = sim.add_node(l.clients[static_cast<std::size_t>(i)]);
      flows.push_back(sim.add_udp_flow(ap, sta, 24.0 / n_stations));
    }
    pc.start();
    sim.run();
    pc.stop();
    sim_seconds += sim_span_seconds(cfg);
    events += sim.scheduler().executed();
    for (const auto& f : flows) total += f.goodput_mbps();
    benchmark::DoNotOptimize(total);
  }
  state.counters["sim_seconds_per_wall_second"] =
      benchmark::Counter(sim_seconds, benchmark::Counter::kIsRate);
  state.counters["events_per_second"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
  state.counters["events_executed"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kAvgIterations);
  report_perf(state, pc, events);
}

// Pure scheduler microbench, no PHY/MAC: the dominant MAC pattern of
// schedule / cancel / reschedule plus a fired ladder. Measures raw
// events/sec through the slab + heap with zero steady-state allocation.
void BM_SchedulerChurn(benchmark::State& state) {
  Scheduler s{bench_backend()};
  std::uint64_t sink = 0;
  constexpr int kBatch = 64;
  // Counters bracket the whole loop: iterations here are µs-scale, so
  // per-iteration ioctl start/stop would dominate the timing.
  PerfCounters pc;
  pc.start();
  for (auto _ : state) {
    EventId cancelled[kBatch / 4];
    int nc = 0;
    for (int i = 0; i < kBatch; ++i) {
      EventId id = s.after(microseconds(1 + (i * 7) % 50), [&sink] { ++sink; });
      if (i % 4 == 0) cancelled[nc++] = id;
    }
    for (int i = 0; i < nc; ++i) cancelled[i].cancel();
    s.run();
    benchmark::DoNotOptimize(sink);
  }
  pc.stop();
  state.counters["events_per_second"] = benchmark::Counter(
      static_cast<double>(s.executed()), benchmark::Counter::kIsRate);
  state.counters["pool_slots"] =
      benchmark::Counter(static_cast<double>(s.pool_slots()));
  report_perf(state, pc, s.executed());
}

// Timer restart churn: the defer/backoff/NAV pattern — start, supersede,
// fire — exercising the cancel-tombstone path and slot reuse.
void BM_TimerRestart(benchmark::State& state) {
  Scheduler s{bench_backend()};
  std::uint64_t fired = 0;
  Timer t(s, [&fired] { ++fired; });
  // Whole-loop counter bracket, as in BM_SchedulerChurn: per-iteration
  // ioctls would dominate these µs-scale iterations.
  PerfCounters pc;
  pc.start();
  for (auto _ : state) {
    for (int i = 0; i < 32; ++i) t.start(microseconds(10 + i));
    s.run();
    benchmark::DoNotOptimize(fired);
  }
  pc.stop();
  state.counters["restarts_per_second"] = benchmark::Counter(
      32.0 * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
  state.counters["pool_slots"] =
      benchmark::Counter(static_cast<double>(s.pool_slots()));
  report_perf(state, pc, s.executed());
}

// The conservative parallel engine at hotspot scale: four isolated cells
// of 8 stations each plus a ring of cross-cell backhaul flows (2 ms wire
// => 2 ms lookahead epochs), run on 1, 2 and 4 shards. The 1-shard row is
// the sequential reference (identical epoch structure, no worker
// threads); speedup at N shards is the row ratio. No perf-counter
// attribution here: the work runs on pool workers, which the calling
// thread's perf_event fds do not observe — cycle attribution for the
// engine's event path comes from the single-threaded benches above.
void BM_ShardedHotspot(benchmark::State& state) {
  const int n_shards = static_cast<int>(state.range(0));
  std::uint64_t seed = 1;
  double total = 0.0;
  double sim_seconds = 0.0;
  std::uint64_t events = 0;
  std::uint64_t routed = 0;
  for (auto _ : state) {
    ShardedWorldSpec spec;
    spec.base.comm_range_m = 30.0;
    spec.base.cs_range_m = 60.0;
    spec.base.measure = seconds(1);
    spec.base.warmup = milliseconds(100);
    spec.base.seed = seed++;
    spec.base.scheduler_backend = bench_backend();
    for (int b = 0; b < 4; ++b) {
      HotspotBssSpec cell;
      cell.ap = Position{600.0 * b, 0.0};
      cell.n_stations = 8;
      cell.rate_mbps = 24.0 / 8;
      spec.bsss.push_back(cell);
    }
    for (int b = 0; b < 4; ++b) {
      CrossFlowSpec cf;
      cf.src_bss = b;
      cf.dst_bss = (b + 1) % 4;
      cf.dst_station = b;
      cf.latency = milliseconds(2);
      cf.rate_mbps = 0.5;
      spec.cross_flows.push_back(cf);
    }
    ShardedSim sim(spec, n_shards, /*threaded=*/n_shards > 1);
    sim.run();
    sim_seconds += sim_span_seconds(spec.base);
    events += sim.events_executed();
    routed += sim.cross_packets_routed();
    for (const auto& m : sim.metrics()) total += m.goodput_mbps;
    benchmark::DoNotOptimize(total);
  }
  state.counters["sim_seconds_per_wall_second"] =
      benchmark::Counter(sim_seconds, benchmark::Counter::kIsRate);
  state.counters["events_per_second"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kIsRate);
  state.counters["events_executed"] = benchmark::Counter(
      static_cast<double>(events), benchmark::Counter::kAvgIterations);
  state.counters["cross_packets_routed"] = benchmark::Counter(
      static_cast<double>(routed), benchmark::Counter::kAvgIterations);
}

BENCHMARK(BM_SaturatedUdpPairs)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TcpPair)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Hotspot)->Arg(16)->Arg(32)->Arg(64)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_SchedulerChurn)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_TimerRestart)->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_ShardedHotspot)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

}  // namespace

// Custom main (instead of BENCHMARK_MAIN) to stamp the run's context with
// what actually matters for comparability: the *project* build type
// (library_build_type only describes the system libbenchmark) and which
// scheduler backend the binary defaults to.
int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::AddCustomContext("g80211_build_type", G80211_BUILD_TYPE);
  benchmark::AddCustomContext(
      "g80211_scheduler_backend",
      bench_backend() == SchedulerBackend::kTimingWheel ? "timing_wheel"
                                                        : "dary_heap");
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
