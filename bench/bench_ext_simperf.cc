// Simulator performance: wall-clock cost of simulated time across
// scenario sizes — the practical number a user needs to size parameter
// sweeps. Unlike the per-figure benches (Iterations(1) experiment
// drivers), these are real google-benchmark timings.
#include <benchmark/benchmark.h>

#include "bench/common.h"

using namespace g80211;
using namespace g80211::bench;

namespace {

void BM_SaturatedUdpPairs(benchmark::State& state) {
  const int n_pairs = static_cast<int>(state.range(0));
  std::uint64_t seed = 1;
  double total = 0.0;
  for (auto _ : state) {
    SimConfig cfg;
    cfg.measure = seconds(1);
    cfg.warmup = milliseconds(100);
    cfg.seed = seed++;
    Sim sim(cfg);
    const PairLayout l = pairs_in_range(n_pairs);
    std::vector<Node*> senders, receivers;
    for (int i = 0; i < n_pairs; ++i) senders.push_back(&sim.add_node(l.senders[i]));
    for (int i = 0; i < n_pairs; ++i) receivers.push_back(&sim.add_node(l.receivers[i]));
    std::vector<Sim::UdpFlow> flows;
    for (int i = 0; i < n_pairs; ++i) {
      flows.push_back(sim.add_udp_flow(*senders[i], *receivers[i]));
    }
    sim.run();
    for (const auto& f : flows) total += f.goodput_mbps();
    benchmark::DoNotOptimize(total);
  }
  state.counters["sim_seconds_per_wall_second"] =
      benchmark::Counter(1.1 * static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}

void BM_TcpPair(benchmark::State& state) {
  std::uint64_t seed = 1;
  for (auto _ : state) {
    SimConfig cfg;
    cfg.measure = seconds(1);
    cfg.warmup = milliseconds(100);
    cfg.seed = seed++;
    Sim sim(cfg);
    const PairLayout l = pairs_in_range(1);
    Node& s = sim.add_node(l.senders[0]);
    Node& r = sim.add_node(l.receivers[0]);
    auto f = sim.add_tcp_flow(s, r);
    sim.run();
    benchmark::DoNotOptimize(f.goodput_mbps());
  }
  state.counters["sim_seconds_per_wall_second"] =
      benchmark::Counter(1.1 * static_cast<double>(state.iterations()),
                         benchmark::Counter::kIsRate);
}

BENCHMARK(BM_SaturatedUdpPairs)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_TcpPair)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
