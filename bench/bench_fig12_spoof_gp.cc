// Fig 12: ACK spoofing under a varying greedy percentage (how often GR
// spoofs when it sniffs the victim's data) across low/moderate/high loss.
//
// One campaign per BER level; every gp point and seed runs concurrently on
// the G80211_JOBS pool with sweep-ordered aggregation.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.h"

using namespace g80211;
using namespace g80211::bench;

namespace {

void run(benchmark::State& state) {
  double gain_gp100_moderate = 0.0;
  for (const double ber : {1e-5, 2e-4, 8e-4}) {
    char figure[64];
    std::snprintf(figure, sizeof(figure), "fig12_spoof_gp_ber%g", ber);
    Campaign campaign(figure, {"normal_mbps", "greedy_mbps"});
    for (const int gp : {0, 20, 40, 60, 80, 100}) {
      PairsSpec spec;
      spec.tcp = true;
      spec.cfg = base_config();
      spec.cfg.default_ber = ber;
      spec.cfg.capture_threshold = 10.0;
      spec.customize = [gp](Sim& sim, std::vector<Node*>&,
                            std::vector<Node*>& rx) {
        if (gp > 0) sim.make_ack_spoofer(*rx[1], gp / 100.0, {rx[0]->id()});
      };
      campaign.add(pairs_goodput_job(std::to_string(gp),
                                     static_cast<double>(gp), std::move(spec),
                                     default_runs(),
                                     1300 + static_cast<std::uint64_t>(gp)));
    }
    const auto points = campaign.run();

    std::printf("Fig 12: ACK spoofing, greedy-percentage sweep, BER=%g (802.11b)\n",
                ber);
    TableWriter table({"gp_pct", "normal_mbps", "greedy_mbps"});
    table.print_header();
    print_points(table, points);
    std::printf("\n");
    if (ber == 2e-4) {
      const auto& at100 = points.back();
      gain_gp100_moderate = at100.median[1] - at100.median[0];
    }
  }
  state.counters["gain_gp100_ber2e-4"] = gain_gp100_moderate;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  register_once("Fig12/SpoofGreedyPct", run);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
