// Fig 12: ACK spoofing under a varying greedy percentage (how often GR
// spoofs when it sniffs the victim's data) across low/moderate/high loss.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.h"

using namespace g80211;
using namespace g80211::bench;

namespace {

void run(benchmark::State& state) {
  double gain_gp100_moderate = 0.0;
  for (const double ber : {1e-5, 2e-4, 8e-4}) {
    std::printf("Fig 12: ACK spoofing, greedy-percentage sweep, BER=%g (802.11b)\n",
                ber);
    TableWriter table({"gp_pct", "normal_mbps", "greedy_mbps"});
    table.print_header();
    for (const int gp : {0, 20, 40, 60, 80, 100}) {
      PairsSpec spec;
      spec.tcp = true;
      spec.cfg = base_config();
      spec.cfg.default_ber = ber;
      spec.cfg.capture_threshold = 10.0;
      spec.customize = [&](Sim& sim, std::vector<Node*>&, std::vector<Node*>& rx) {
        if (gp > 0) sim.make_ack_spoofer(*rx[1], gp / 100.0, {rx[0]->id()});
      };
      const auto med = median_pair_goodputs(spec, default_runs(), 1300 + gp);
      table.print_row({static_cast<double>(gp), med[0], med[1]});
      if (gp == 100 && ber == 2e-4) gain_gp100_moderate = med[1] - med[0];
    }
    std::printf("\n");
  }
  state.counters["gain_gp100_ber2e-4"] = gain_gp100_moderate;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  register_once("Fig12/SpoofGreedyPct", run);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
