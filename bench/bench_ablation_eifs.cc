// Ablation (DESIGN.md): EIFS deference after corrupted receptions. EIFS
// matters under loss: a station that cannot decode a frame must defer long
// enough for the unseen ACK exchange to complete. Disabling it lets
// bystanders stomp ACKs, which changes loss dynamics in every BER-driven
// experiment. This bench quantifies the effect on the Fig 11 operating
// point (two TCP flows, BER=2e-4, no misbehavior).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.h"

using namespace g80211;
using namespace g80211::bench;

namespace {

void run(benchmark::State& state) {
  std::printf("Ablation: EIFS on vs off (two honest TCP flows, BER=2e-4)\n");
  TableWriter table({"eifs", "flow1_mbps", "flow2_mbps", "total"});
  table.print_header();

  double total_on = 0.0, total_off = 0.0;
  for (const bool eifs : {true, false}) {
    PairsSpec spec;
    spec.tcp = true;
    spec.cfg = base_config();
    spec.cfg.default_ber = 2e-4;
    spec.customize = [eifs](Sim&, std::vector<Node*>& senders,
                            std::vector<Node*>& receivers) {
      if (!eifs) {
        for (Node* n : senders) n->mac().set_eifs_enabled(false);
        for (Node* n : receivers) n->mac().set_eifs_enabled(false);
      }
    };
    const auto med = median_pair_goodputs(spec, default_runs(), 3200);
    table.print_row({eifs ? 1.0 : 0.0, med[0], med[1], med[0] + med[1]});
    (eifs ? total_on : total_off) = med[0] + med[1];
  }
  std::printf("\n");
  state.counters["total_eifs_on"] = total_on;
  state.counters["total_eifs_off"] = total_off;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  register_once("Ablation/Eifs", run);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
