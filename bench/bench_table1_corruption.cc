// Table I: most corrupted packets preserve source and destination MAC
// addresses. The paper measured this on a MadWiFi testbed; here the frames
// travel through the per-bit corruption model (src/phy/error_model), with
// bit error rates calibrated to the paper's observed corruption fractions
// (~2% on 802.11b, ~32% on 802.11a).
//
// Note on shape: an i.i.d. bit-error channel preserves addresses slightly
// more often than the paper's bursty real-world channel; the conclusion —
// that fake ACKs are feasible because addresses usually survive — holds
// with margin.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.h"
#include "src/phy/error_model.h"

using namespace g80211;
using namespace g80211::bench;

namespace {

ErrorModel::CorruptionBreakdown study(double bit_ber, std::int64_t frames,
                                      std::uint64_t seed) {
  Rng rng(seed);
  return ErrorModel::corruption_study(rng, bit_ber, /*frame_bytes=*/1064, frames);
}

void run(benchmark::State& state) {
  std::printf(
      "Table I: corrupted packets preserving MAC addresses\n"
      "%10s %10s %11s %16s %18s\n",
      "", "#received", "#corrupted", "#corr w/ dest ok", "#corr w/ src+dest");
  const auto b = study(2.5e-6, 65536, 1001);   // 802.11b: ~2% corruption
  const auto a = study(4.55e-5, 23068, 1002);  // 802.11a: ~32% corruption
  for (const auto& [name, r] :
       {std::pair{"802.11b", b}, std::pair{"802.11a", a}}) {
    std::printf("%10s %10lld %11lld %16lld %18lld\n", name,
                static_cast<long long>(r.received),
                static_cast<long long>(r.corrupted),
                static_cast<long long>(r.corrupted_correct_dest),
                static_cast<long long>(r.corrupted_correct_src_dest));
  }
  const double dest_frac_b =
      static_cast<double>(b.corrupted_correct_dest) / static_cast<double>(b.corrupted);
  std::printf("802.11b: %.1f%% of corrupted frames keep the destination "
              "(paper: 98.8%%)\n\n", 100.0 * dest_frac_b);
  state.counters["b_dest_ok_pct"] = 100.0 * dest_frac_b;
  state.counters["a_corrupted"] = static_cast<double>(a.corrupted);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  register_once("Table1/HeaderCorruption", run);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
