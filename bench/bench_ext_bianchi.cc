// Extension: simulator validation against Bianchi's analytical model of
// DCF saturation throughput (IEEE JSAC 2000). Every attack result in this
// reproduction perturbs an honest saturated baseline; this table shows
// that baseline agrees with the canonical closed-form analysis across
// station counts and both access modes.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "bench/common.h"
#include "src/analysis/bianchi.h"

using namespace g80211;
using namespace g80211::bench;

namespace {

double simulate_total(int n, bool rts_cts, std::uint64_t seed) {
  SimConfig cfg;
  cfg.rts_cts = rts_cts;
  cfg.measure = default_measure();
  cfg.seed = seed;
  Sim sim(cfg);
  const PairLayout l = pairs_in_range(n);
  std::vector<Node*> senders, receivers;
  for (int i = 0; i < n; ++i) senders.push_back(&sim.add_node(l.senders[i]));
  for (int i = 0; i < n; ++i) receivers.push_back(&sim.add_node(l.receivers[i]));
  std::vector<Sim::UdpFlow> flows;
  for (int i = 0; i < n; ++i) {
    flows.push_back(sim.add_udp_flow(*senders[i], *receivers[i]));
  }
  sim.run();
  double total = 0.0;
  for (const auto& f : flows) total += f.goodput_mbps();
  return total;
}

void run(benchmark::State& state) {
  std::printf(
      "Extension: honest saturation throughput, simulator vs Bianchi model\n");
  TableWriter table({"n", "mode", "model", "sim", "err_pct"}, 10);
  table.print_header();
  double worst = 0.0;
  for (const bool rts_cts : {true, false}) {
    for (const int n : {1, 2, 4, 8}) {
      BianchiConfig cfg;
      cfg.n_stations = n;
      cfg.rts_cts = rts_cts;
      const auto model = bianchi_saturation(WifiParams::b11(), cfg);
      const auto med = median_over_seeds(default_runs(), 3700 + n, [&](std::uint64_t s) {
        return std::vector<double>{simulate_total(n, rts_cts, s)};
      });
      const double err = 100.0 * std::abs(med[0] - model.throughput_mbps) /
                         model.throughput_mbps;
      worst = std::max(worst, err);
      table.print_text_row({std::to_string(n), rts_cts ? "rts" : "basic",
                            std::to_string(model.throughput_mbps).substr(0, 5),
                            std::to_string(med[0]).substr(0, 5),
                            std::to_string(err).substr(0, 4)});
    }
  }
  std::printf("worst disagreement: %.1f%%\n\n", worst);
  state.counters["worst_err_pct"] = worst;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  register_once("Extension/BianchiValidation", run);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
