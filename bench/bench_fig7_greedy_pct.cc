// Fig 7: two TCP flows where GR inflates its CTS NAV by 5, 10, or 31 ms on
// only a fraction (the Greedy Percentage) of its CTS frames — cheating on
// half the frames already buys a large share of the medium.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.h"

using namespace g80211;
using namespace g80211::bench;

namespace {

void run(benchmark::State& state) {
  double gain_gp50_10ms = 0.0;
  for (const Time inflation : {milliseconds(5), milliseconds(10), milliseconds(31)}) {
    std::printf("Fig 7: TCP goodput vs greedy percentage, CTS NAV +%g ms\n",
                to_millis(inflation));
    TableWriter table({"gp_pct", "normal_mbps", "greedy_mbps"});
    table.print_header();
    for (const int gp : {0, 25, 50, 75, 100}) {
      PairsSpec spec;
      spec.tcp = true;
      spec.cfg = base_config();
      spec.customize = [&](Sim& sim, std::vector<Node*>&, std::vector<Node*>& rx) {
        if (gp > 0) {
          sim.make_nav_inflator(*rx[1], NavFrameMask::cts_only(), inflation,
                                gp / 100.0);
        }
      };
      const auto med = median_pair_goodputs(spec, default_runs(), 700 + gp);
      table.print_row({static_cast<double>(gp), med[0], med[1]});
      if (gp == 50 && inflation == milliseconds(10)) {
        gain_gp50_10ms = med[1] - med[0];
      }
    }
    std::printf("\n");
  }
  state.counters["gain_mbps_gp50_10ms"] = gain_gp50_10ms;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  register_once("Fig7/GreedyPercentage", run);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
