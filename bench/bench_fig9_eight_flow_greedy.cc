// Fig 9: 8 TCP flows with a varying number of greedy receivers, each
// inflating its CTS NAV by 31 ms at GP=100%. The paper's observation: with
// more than one greedy receiver only one of them survives — 31 ms is large
// enough that whoever reserves first keeps the channel round after round.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>

#include "bench/common.h"

using namespace g80211;
using namespace g80211::bench;

namespace {

void run(benchmark::State& state) {
  std::printf(
      "Fig 9: 8 TCP flows, varying number of 31 ms CTS-NAV inflators\n");
  TableWriter table({"n_greedy", "top_mbps", "2nd_mbps", "sum_rest"}, 12);
  table.print_header();

  double second_with_two_greedy = -1.0;
  for (const int n_greedy : {0, 1, 2, 4, 8}) {
    PairsSpec spec;
    spec.n_pairs = 8;
    spec.tcp = true;
    spec.cfg = base_config();
    spec.customize = [&](Sim& sim, std::vector<Node*>&, std::vector<Node*>& rx) {
      for (int i = 0; i < n_greedy; ++i) {
        sim.make_nav_inflator(*rx[i], NavFrameMask::cts_only(), milliseconds(31));
      }
    };
    auto med = median_pair_goodputs(spec, default_runs(), 900 + n_greedy);
    std::sort(med.begin(), med.end(), std::greater<>());
    double rest = 0.0;
    for (std::size_t i = 2; i < med.size(); ++i) rest += med[i];
    table.print_row({static_cast<double>(n_greedy), med[0], med[1], rest});
    if (n_greedy == 2) second_with_two_greedy = med[1];
  }
  std::printf("\n");
  state.counters["second_mbps_with_2_greedy"] = second_with_two_greedy;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  register_once("Fig9/EightFlowsManyGreedy", run);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
