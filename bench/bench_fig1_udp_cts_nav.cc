// Fig 1: goodput of two UDP flows NS->NR and GS->GR, where GR inflates the
// NAV in its CTS frames (802.11b). The paper's headline: +0.6 ms already
// lets the greedy receiver grab the whole medium.
//
// Runs as one campaign: all inflation points and their seeded repetitions
// execute concurrently (G80211_JOBS workers); the table and the exported
// metrics are aggregated in sweep order, so output is identical at any
// thread count.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.h"
#include "src/capture/capture_writer.h"

using namespace g80211;
using namespace g80211::bench;

namespace {

void run(benchmark::State& state) {
  Campaign campaign("fig1_udp_cts_nav", {"normal_mbps", "greedy_mbps"});
  for (const Time inflation :
       {microseconds(0), microseconds(200), microseconds(400), microseconds(600),
        milliseconds(1), milliseconds(2), milliseconds(5), milliseconds(10),
        milliseconds(31)}) {
    PairsSpec spec;
    spec.tcp = false;
    spec.cfg = base_config();
    spec.customize = [inflation](Sim& sim, std::vector<Node*>&,
                                 std::vector<Node*>& rx) {
      if (inflation > 0) {
        sim.make_nav_inflator(*rx[1], NavFrameMask::cts_only(), inflation);
      }
    };
    char label[32];
    std::snprintf(label, sizeof(label), "%g", to_millis(inflation));
    // Opt-in per-run frame captures next to the exported metrics
    // (G80211_CAPTURE=1 + G80211_METRICS_DIR; "" keeps captures off).
    spec.capture_stem = run_capture_stem("fig1_udp_cts_nav", label);
    campaign.add(pairs_goodput_job(label, to_millis(inflation), std::move(spec),
                                   default_runs(), 100));
  }
  const auto points = campaign.run();

  std::printf("Fig 1: UDP goodput vs CTS NAV inflation (802.11b, RTS/CTS)\n");
  TableWriter table({"nav_inc_ms", "normal_mbps", "greedy_mbps"});
  table.print_header();
  print_points(table, points);
  std::printf("\n");
  state.counters["greedy_mbps_at_31ms"] = points.back().median[1];
  state.counters["normal_mbps_at_31ms"] = points.back().median[0];
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  register_once("Fig1/UdpCtsNav", run);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
