// Fig 1: goodput of two UDP flows NS->NR and GS->GR, where GR inflates the
// NAV in its CTS frames (802.11b). The paper's headline: +0.6 ms already
// lets the greedy receiver grab the whole medium.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.h"

using namespace g80211;
using namespace g80211::bench;

namespace {

void run(benchmark::State& state) {
  std::printf("Fig 1: UDP goodput vs CTS NAV inflation (802.11b, RTS/CTS)\n");
  TableWriter table({"nav_inc_ms", "normal_mbps", "greedy_mbps"});
  table.print_header();

  double greedy_at_max = 0.0, normal_at_max = 0.0;
  for (const Time inflation :
       {microseconds(0), microseconds(200), microseconds(400), microseconds(600),
        milliseconds(1), milliseconds(2), milliseconds(5), milliseconds(10),
        milliseconds(31)}) {
    PairsSpec spec;
    spec.tcp = false;
    spec.cfg = base_config();
    spec.customize = [inflation](Sim& sim, std::vector<Node*>&,
                                 std::vector<Node*>& rx) {
      if (inflation > 0) {
        sim.make_nav_inflator(*rx[1], NavFrameMask::cts_only(), inflation);
      }
    };
    const auto med = median_pair_goodputs(spec, default_runs(), 100);
    table.print_row({to_millis(inflation), med[0], med[1]});
    normal_at_max = med[0];
    greedy_at_max = med[1];
  }
  std::printf("\n");
  state.counters["greedy_mbps_at_31ms"] = greedy_at_max;
  state.counters["normal_mbps_at_31ms"] = normal_at_max;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  register_once("Fig1/UdpCtsNav", run);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
