// Fig 11: goodput of two TCP flows under a varying wireless loss rate,
// where the greedy receiver spoofs MAC ACKs on behalf of the normal
// receiver, for 802.11b and 802.11a. The paper's shape: the greedy gain
// first grows with BER (more victim losses to exploit), then shrinks as
// the attacker's own link degrades and it overhears fewer frames.
// The last column is analytic: PFTK steady-state TCP throughput at
// p = the raw data frame error rate — the loss rate the victim's TCP sees
// once spoofed ACKs disable MAC retransmission. It tracks the measured
// victim curve, which is the quantitative version of the paper's "losses
// are propagated to TCP" argument.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.h"
#include "src/analysis/tcp_model.h"
#include "src/phy/error_model.h"

using namespace g80211;
using namespace g80211::bench;

namespace {

double sweep(const char* title, Standard standard, std::uint64_t seed) {
  std::printf("%s\n", title);
  TableWriter table(
      {"ber", "noGR_R1", "noGR_R2", "wGR_NR", "wGR_GR", "pftk_NR"});
  table.print_header();
  double greedy_gain_2e4 = 0.0;
  PftkConfig model;
  model.rtt = milliseconds(8);  // two contended MAC exchanges
  for (const double ber : {0.0, 1e-5, 1e-4, 2e-4, 3.2e-4, 4.4e-4, 8e-4}) {
    std::vector<double> rows;
    for (const bool attack : {false, true}) {
      PairsSpec spec;
      spec.tcp = true;
      spec.cfg = base_config(standard);
      spec.cfg.default_ber = ber;
      spec.cfg.capture_threshold = 10.0;  // paper Section IV-B capture setup
      spec.customize = [&](Sim& sim, std::vector<Node*>&, std::vector<Node*>& rx) {
        if (attack) sim.make_ack_spoofer(*rx[1], 1.0, {rx[0]->id()});
      };
      const auto med = median_pair_goodputs(spec, default_runs(), seed);
      rows.push_back(med[0]);
      rows.push_back(med[1]);
    }
    const double p =
        ErrorModel::fer(ber, ErrorModel::error_len(FrameType::kData, 1064));
    // The victim is limited by whichever binds: TCP-over-loss (PFTK) or
    // its contended channel share (the measured honest baseline).
    const double predicted = std::min(pftk_throughput_mbps(model, p), rows[0]);
    table.print_row({ber, rows[0], rows[1], rows[2], rows[3], predicted});
    if (ber == 2e-4) greedy_gain_2e4 = rows[3] - rows[2];
  }
  std::printf("\n");
  return greedy_gain_2e4;
}

void run(benchmark::State& state) {
  const double gain_b = sweep("Fig 11(a): ACK spoofing vs BER (802.11b, TCP)",
                              Standard::B80211, 1200);
  const double gain_a = sweep("Fig 11(b): ACK spoofing vs BER (802.11a, TCP)",
                              Standard::A80211, 1210);
  state.counters["greedy_gain_2e-4_11b"] = gain_b;
  state.counters["greedy_gain_2e-4_11a"] = gain_a;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  register_once("Fig11/SpoofVsBer", run);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
