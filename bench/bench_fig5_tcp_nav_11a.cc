// Fig 5: the Fig 4 sweeps on 802.11a. The paper's observation: for the
// same NAV inflation the damage is larger than on 802.11b because
// inter-frame spacings and transmission times are smaller, so the same
// absolute reservation buys relatively more stolen airtime.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.h"

using namespace g80211;
using namespace g80211::bench;

namespace {

double sweep(const char* title, NavFrameMask mask, std::uint64_t base_seed) {
  std::printf("%s\n", title);
  TableWriter table({"nav_inc_ms", "normal_mbps", "greedy_mbps"});
  table.print_header();
  double gap_at_2ms = 0.0;
  for (const Time inflation :
       {microseconds(0), microseconds(500), milliseconds(1), milliseconds(2),
        milliseconds(5), milliseconds(10), milliseconds(20), milliseconds(31)}) {
    PairsSpec spec;
    spec.tcp = true;
    spec.cfg = base_config(Standard::A80211);
    spec.customize = [&](Sim& sim, std::vector<Node*>&, std::vector<Node*>& rx) {
      if (inflation > 0) sim.make_nav_inflator(*rx[1], mask, inflation);
    };
    const auto med = median_pair_goodputs(spec, default_runs(), base_seed);
    table.print_row({to_millis(inflation), med[0], med[1]});
    if (inflation == milliseconds(2)) gap_at_2ms = med[1] - med[0];
  }
  std::printf("\n");
  return gap_at_2ms;
}

void run(benchmark::State& state) {
  sweep("Fig 5(a): TCP, inflated CTS NAV (802.11a)", NavFrameMask::cts_only(), 500);
  sweep("Fig 5(b): TCP, inflated RTS+CTS NAV (802.11a)",
        NavFrameMask::rts_and_cts(), 510);
  sweep("Fig 5(c): TCP, inflated ACK NAV (802.11a)", NavFrameMask::ack_only(), 520);
  const double gap =
      sweep("Fig 5(d): TCP, inflated NAV on all frames (802.11a)",
            NavFrameMask::all(), 530);
  state.counters["gap_mbps_allframes_2ms"] = gap;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  register_once("Fig5/TcpNav80211a", run);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
