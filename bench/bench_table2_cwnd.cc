// Table II: average TCP congestion window for the normal and greedy flows
// under CTS NAV inflation, comparing the shared-sender (1 AP -> NR, GR)
// and two-sender (NS->NR, GS->GR) cases. The paper's reading: inflation
// skews the windows far more with separate senders, but the shared-sender
// skew is still significant.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench/common.h"

using namespace g80211;
using namespace g80211::bench;

namespace {

void run(benchmark::State& state) {
  std::printf("Table II: average TCP congestion window (segments)\n");
  TableWriter table({"nav_inc_ms", "1s_S-NR", "1s_S-GR", "2s_NS-NR", "2s_GS-GR"});
  table.print_header();

  double two_sender_gap_at_10 = 0.0;
  for (const Time inflation :
       {microseconds(0), milliseconds(1), milliseconds(2), milliseconds(5),
        milliseconds(10), milliseconds(20), milliseconds(31)}) {
    // One shared sender.
    SharedApSpec shared;
    shared.n_clients = 2;
    shared.tcp = true;
    shared.cfg = base_config();
    shared.customize = [&](Sim& sim, Node&, std::vector<Node*>& clients) {
      if (inflation > 0) {
        sim.make_nav_inflator(*clients[1], NavFrameMask::cts_only(), inflation);
      }
    };
    const auto one = median_over_seeds(default_runs(), 1100, [&](std::uint64_t s) {
      return run_shared_ap(shared, s).avg_cwnd;
    });

    // Two independent senders.
    PairsSpec pairs;
    pairs.tcp = true;
    pairs.cfg = base_config();
    pairs.customize = [&](Sim& sim, std::vector<Node*>&, std::vector<Node*>& rx) {
      if (inflation > 0) {
        sim.make_nav_inflator(*rx[1], NavFrameMask::cts_only(), inflation);
      }
    };
    const auto two = median_over_seeds(default_runs(), 1110, [&](std::uint64_t s) {
      return run_pairs(pairs, s).avg_cwnd;
    });

    table.print_row({to_millis(inflation), one[0], one[1], two[0], two[1]});
    if (inflation == milliseconds(10)) two_sender_gap_at_10 = two[1] - two[0];
  }
  std::printf("\n");
  state.counters["two_sender_cwnd_gap_10ms"] = two_sender_gap_at_10;
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  register_once("Table2/AvgCongestionWindow", run);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
