// g80211_capture — summarise (and offline-replay) a capture file.
//
//   g80211_capture <capture.pcap | capture.jsonl>
//
// Prints per-station airtime, a Duration/NAV histogram, corruption and
// collision counts, and — when the file is a JSONL journal (which carries
// the simulation parameters and ground truth) — the offline GRC verdict
// table from src/capture/replay.h.
//
// Exit status: 0 on success, 1 when the file is malformed or replay
// fails, 2 on usage errors.
#include <algorithm>
#include <cstdio>
#include <exception>
#include <map>
#include <string>
#include <vector>

#include "src/capture/capture_reader.h"
#include "src/capture/replay.h"

using namespace g80211;

namespace {

// Attributed transmitter of a frame: TA when the frame carries one, the
// journal's ground truth otherwise (pcap CTS/ACK stay unattributed).
int attributed_tx(const CapturedFrame& f) {
  if (f.ta != kNoAddr) return f.ta;
  return f.true_tx;
}

// On-air time of one frame. The journal records exact edges; a pcap only
// has the start timestamp, so fall back to payload bits / rate (the PLCP
// preamble is not recoverable from a pcap and is excluded there).
Time frame_airtime(const CapturedFrame& f) {
  if (f.end > f.start) return f.end - f.start;
  if (f.rate_mbps > 0) return tx_time(static_cast<std::int64_t>(f.bytes) * 8, f.rate_mbps);
  return 0;
}

void print_summary(const Capture& cap, const std::string& path) {
  std::printf("capture %s\n", path.c_str());
  if (cap.has_params) {
    std::printf("  vantage station: %d   horizon: %.6f s   frames: %zu\n",
                cap.owner, to_seconds(cap.end_time), cap.frames.size());
  } else {
    std::printf("  frames: %zu (pcap: no vantage/params metadata)\n",
                cap.frames.size());
  }
  if (cap.skipped_unknown > 0) {
    std::printf("  skipped %lld unrecognised record(s)\n",
                static_cast<long long>(cap.skipped_unknown));
  }

  // Per-station airtime and frame counts.
  struct Station {
    std::int64_t frames = 0;
    Time airtime = 0;
  };
  std::map<int, Station> stations;
  std::int64_t unattributed = 0;
  std::int64_t corrupted = 0, collided = 0, retries = 0;
  for (const CapturedFrame& f : cap.frames) {
    if (f.corrupted) ++corrupted;
    if (f.collided) ++collided;
    if (f.retry) ++retries;
    const int tx = attributed_tx(f);
    if (tx == kNoAddr) {
      ++unattributed;
      continue;
    }
    auto& s = stations[tx];
    ++s.frames;
    s.airtime += frame_airtime(f);
  }

  std::printf("\n  %-10s %10s %14s\n", "station", "frames", "airtime_ms");
  for (const auto& [id, s] : stations) {
    std::printf("  %-10d %10lld %14.3f\n", id,
                static_cast<long long>(s.frames), to_millis(s.airtime));
  }
  if (unattributed > 0) {
    std::printf("  %-10s %10lld %14s\n", "(CTS/ACK)",
                static_cast<long long>(unattributed), "-");
  }
  std::printf("\n  corrupted: %lld   collisions: %lld   retries: %lld\n",
              static_cast<long long>(corrupted),
              static_cast<long long>(collided),
              static_cast<long long>(retries));

  // Duration/NAV histogram: exponential microsecond buckets — inflated
  // NAVs (the paper's 30 ms CTS attack) land in the top buckets.
  static constexpr double kEdgesUs[] = {0.0, 100.0, 300.0, 1000.0,
                                        3000.0, 10000.0, 32767.0};
  constexpr int kBuckets = static_cast<int>(sizeof(kEdgesUs) / sizeof(kEdgesUs[0]));
  std::int64_t hist[kBuckets] = {};
  for (const CapturedFrame& f : cap.frames) {
    const double us = to_micros(f.duration);
    int b = 0;
    while (b + 1 < kBuckets && us > kEdgesUs[b]) ++b;
    ++hist[b];
  }
  std::printf("\n  NAV histogram (Duration field, us):\n");
  const char* labels[kBuckets] = {"0",          "(0,100]",    "(100,300]",
                                  "(300,1e3]",  "(1e3,3e3]",  "(3e3,1e4]",
                                  "(1e4,32767]"};
  for (int b = 0; b < kBuckets; ++b) {
    if (hist[b] == 0) continue;
    std::printf("  %-14s %10lld\n", labels[b], static_cast<long long>(hist[b]));
  }
}

void print_replay(const Capture& cap) {
  const ReplayResult res = replay_capture(cap);
  std::printf("\n  offline GRC verdicts (replayed at station %d):\n",
              cap.owner);
  std::printf("  NAV validation: %lld frames validated, %lld inflated\n",
              static_cast<long long>(res.nav_validated),
              static_cast<long long>(res.nav_detections));
  for (const auto& [node, n] : res.nav_detections_by_node) {
    std::printf("    station %-4d flagged %lld time(s)\n", node,
                static_cast<long long>(n));
  }
  if (res.acks_checked > 0) {
    std::printf(
        "  ACK spoofing: %lld ACKs checked, %lld flagged "
        "(tp=%lld fp=%lld tn=%lld fn=%lld)\n",
        static_cast<long long>(res.acks_checked),
        static_cast<long long>(res.spoof_flagged()),
        static_cast<long long>(res.spoof_tp),
        static_cast<long long>(res.spoof_fp),
        static_cast<long long>(res.spoof_tn),
        static_cast<long long>(res.spoof_fn));
  }
  for (const FakeAckVerdict& v : res.fake_ack) {
    std::printf(
        "  fake-ACK probe toward %d: %lld probes, app loss %.3f vs expected "
        "%.3f (MAC loss %.3f) -> %s\n",
        v.dest, static_cast<long long>(v.probes_seen), v.application_loss,
        v.expected_app_loss, v.mac_loss,
        v.detected ? "GREEDY RECEIVER DETECTED" : "honest");
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2 || std::string(argv[1]) == "-h" ||
      std::string(argv[1]) == "--help") {
    std::fprintf(stderr, "usage: g80211_capture <capture.pcap|capture.jsonl>\n");
    return 2;
  }
  const std::string path = argv[1];
  try {
    const Capture cap = read_capture(path);
    print_summary(cap, path);
    if (cap.has_params) print_replay(cap);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "g80211_capture: %s\n", e.what());
    return 1;
  }
  return 0;
}
