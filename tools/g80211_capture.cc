// g80211_capture — summarise (and offline-replay) a capture file.
//
//   g80211_capture <capture.pcap | capture.jsonl>
//
// Prints per-station airtime, a Duration/NAV histogram, corruption and
// collision counts, and — when the file is a JSONL journal (which carries
// the simulation parameters and ground truth) — the offline GRC verdict
// table from src/capture/replay.h. All formatting is shared with
// g80211_monitor (src/monitor/report.h).
//
// Exit status: 0 on success, 1 when the file is malformed or replay
// fails, 2 on usage errors.
#include <cstdio>
#include <exception>
#include <string>

#include "src/capture/capture_reader.h"
#include "src/capture/replay.h"
#include "src/monitor/report.h"

using namespace g80211;

int main(int argc, char** argv) {
  if (argc != 2 || std::string(argv[1]) == "-h" ||
      std::string(argv[1]) == "--help") {
    std::fprintf(stderr, "usage: g80211_capture <capture.pcap|capture.jsonl>\n");
    return 2;
  }
  const std::string path = argv[1];
  try {
    const Capture cap = read_capture(path);
    print_capture_summary(stdout, cap, path);
    if (cap.has_params) {
      print_replay_result(stdout, cap.owner, replay_capture(cap));
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "g80211_capture: %s\n", e.what());
    return 1;
  }
  return 0;
}
