// g80211_monitor — streaming GRC detection over capture journals.
//
//   g80211_monitor [options] <capture.jsonl> [capture2.jsonl ...]
//
// Runs the full offline detector suite (NAV validation, ACK-spoof RSSI
// profiling, fake-ACK probes, DOMINO backoff, cross-layer TCP/MAC
// correlation) over one or more JSONL capture journals, each treated as
// an independent per-BSS stream sharded across a worker pool. Emits one
// JSONL record per closed verdict window and per alert on stdout, and a
// human-readable end-of-run summary per stream on stderr.
//
// Only JSONL journals are accepted: pcap drops the exact ticks, parameters
// and ground truth the detectors need, so a pcap input (including one
// handed to --follow) is rejected on its magic bytes with exit status 1.
//
// Options:
//   --follow          tail growing journals: poll, sleep when idle, exit
//                     when every journal's footer has been written
//   --window SECONDS  verdict window length (default 1.0)
//   --bss-shards N    worker shards; streams are pinned index % N
//                     (default 1; verdicts are identical for any N)
//   --quiet           suppress the stderr summary
//
// Exit status: 0 on success, 1 on malformed input or a truncated journal,
// 2 on usage errors.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>
#include <thread>
#include <vector>

#include "src/monitor/driver.h"
#include "src/monitor/report.h"

using namespace g80211;

namespace {

void print_stream_output(MonitorDriver& driver) {
  for (const StreamWindow& w : driver.drain_windows()) {
    std::printf("%s\n",
                window_jsonl(driver.status(static_cast<std::size_t>(w.stream)).path,
                             w.window)
                    .c_str());
  }
  for (const StreamAlert& a : driver.drain_alerts()) {
    std::printf("%s\n",
                alert_jsonl(driver.status(static_cast<std::size_t>(a.stream)).path,
                            a.alert)
                    .c_str());
  }
  std::fflush(stdout);
}

void print_summaries(MonitorDriver& driver) {
  for (std::size_t i = 0; i < driver.num_streams(); ++i) {
    const StreamStatus st = driver.status(i);
    std::fprintf(stderr, "stream %s\n", st.path.c_str());
    std::fprintf(stderr,
                 "  vantage station: %d   horizon: %.6f s   frames: %lld\n",
                 st.owner, to_seconds(st.end_time),
                 static_cast<long long>(st.frames));
    print_skip_stats(stderr, st.skipped_unknown, st.first_skipped_offset);
    print_replay_result(stderr, st.owner, driver.verdicts(i));
  }
}

int usage() {
  std::fprintf(stderr,
               "usage: g80211_monitor [--follow] [--window SECONDS] "
               "[--bss-shards N] [--quiet] <capture.jsonl> [...]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  MonitorOptions opts;
  bool follow = false;
  bool quiet = false;
  std::vector<std::string> paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-h" || arg == "--help") {
      return usage();
    } else if (arg == "--follow") {
      follow = true;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--window") {
      if (++i >= argc) return usage();
      const double s = std::atof(argv[i]);
      if (s <= 0) return usage();
      opts.config.window = static_cast<Time>(s * 1e9);
    } else if (arg == "--bss-shards") {
      if (++i >= argc) return usage();
      opts.shards = std::atoi(argv[i]);
      if (opts.shards < 1) return usage();
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty()) return usage();

  try {
    MonitorDriver driver(opts, paths);
    if (follow) {
      // Tail loop: the sleep lives here, not in src/ (simulation code is
      // wall-clock-free; only the tool decides how eagerly to poll).
      for (;;) {
        const std::size_t consumed = driver.pass();
        print_stream_output(driver);
        if (consumed > 0) continue;
        if (driver.finished()) break;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
      driver.finalize();
    } else {
      driver.drain();
    }
    print_stream_output(driver);
    if (!quiet) print_summaries(driver);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "g80211_monitor: %s\n", e.what());
    return 1;
  }
  return 0;
}
