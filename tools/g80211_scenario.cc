// g80211_scenario — validate, canonicalize and run city-scale scenario
// spec files (src/scenario/spec/).
//
// usage:
//   g80211_scenario --validate <spec>...
//       Parse + schema-check each file. Prints one "OK <name>: ..." line
//       per valid spec; the first invalid spec stops with its
//       line-anchored error on stderr and exit 1.
//   g80211_scenario --describe <spec>
//       Print the canonical TOML form (every default resolved) on stdout.
//       describe() output re-parses to the identical spec, so this doubles
//       as a config normalizer.
//   g80211_scenario --run [--quiet] [--shards N] <spec>
//       Compile and run. Default back-end is the full single-Sim world
//       (churn, roaming, traffic mix, greedy stations, GRC); each closed
//       metric window is printed as a JSONL record on stdout (suppressed
//       by --quiet) and the whole-run summary — per-ring damage radius,
//       honest/greedy goodput, handoffs, detections — goes to stderr.
//       --shards N compiles the sharded-representable subset through the
//       PR 8 parallel engine instead and prints its per-flow metrics.
//       When G80211_METRICS_DIR is set, windows are also streamed to
//       <dir>/<name>.windows.{jsonl,csv} through MetricSink.
//
// Exit codes: 0 success, 1 spec/compile error, 2 usage.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/runner/metric_sink.h"
#include "src/scenario/sharded.h"
#include "src/scenario/spec/world_builder.h"
#include "src/scenario/spec/world_spec.h"

using namespace g80211;
using namespace g80211::spec;

namespace {

int usage() {
  std::fprintf(stderr,
               "usage: g80211_scenario --validate <spec>...\n"
               "       g80211_scenario --describe <spec>\n"
               "       g80211_scenario --run [--quiet] [--shards N] <spec>\n");
  return 2;
}

int cmd_validate(const std::vector<std::string>& paths) {
  for (const std::string& path : paths) {
    const WorldSpec spec = load_world_spec(path);
    const WorldPlan plan = plan_world(spec);
    int greedy = 0;
    for (const StationPlan& st : plan.stations) greedy += st.greedy ? 1 : 0;
    std::printf("OK %s: %d APs, %d stations (%d greedy), %d damage rings\n",
                spec.name.c_str(), spec.num_aps(), spec.num_stations(), greedy,
                plan.num_rings);
  }
  return 0;
}

void print_window(const BuiltWorld::WindowReport& rep) {
  std::printf(
      "{\"window\":%d,\"t_start_s\":%.17g,\"t_end_s\":%.17g,"
      "\"honest_mbps\":%.6g,\"greedy_mbps\":%.6g,\"rings\":[",
      rep.index, rep.t_start_s, rep.t_end_s, rep.honest_mbps, rep.greedy_mbps);
  for (std::size_t r = 0; r < rep.rings.size(); ++r) {
    const BuiltWorld::RingWindow& ring = rep.rings[r];
    std::printf("%s{\"stations\":%" PRId64
                ",\"total_mbps\":%.6g,\"mean_mbps\":%.6g,\"p25\":%.6g,"
                "\"p50\":%.6g,\"p75\":%.6g}",
                r == 0 ? "" : ",", ring.stations, ring.total_mbps,
                ring.mean_mbps, ring.p25, ring.p50, ring.p75);
  }
  std::printf("]}\n");
}

void sink_window(MetricSink& sink, const WorldSpec& spec,
                 const BuiltWorld::WindowReport& rep) {
  WindowRow row;
  row.figure = spec.name;
  row.t_start_s = rep.t_start_s;
  row.t_end_s = rep.t_end_s;
  row.metric = "goodput_mbps";
  row.label = "honest";
  row.count = 1;
  row.mean = row.p25 = row.p50 = row.p75 = rep.honest_mbps;
  sink.write(row);
  row.label = "greedy";
  row.mean = row.p25 = row.p50 = row.p75 = rep.greedy_mbps;
  sink.write(row);
  for (std::size_t r = 0; r < rep.rings.size(); ++r) {
    const BuiltWorld::RingWindow& ring = rep.rings[r];
    row.label = "ring" + std::to_string(r);
    row.count = ring.stations;
    row.mean = ring.mean_mbps;
    row.p25 = ring.p25;
    row.p50 = ring.p50;
    row.p75 = ring.p75;
    sink.write(row);
  }
}

int cmd_run_sharded(const WorldSpec& spec, bool quiet, int shards) {
  const ShardedWorldSpec world = to_sharded(spec);
  ShardedSim sim(world, shards);
  sim.run();
  double total = 0.0;
  for (const ShardedSim::FlowMetrics& m : sim.metrics()) {
    if (!quiet) {
      std::printf("{\"flow\":%d,\"goodput_mbps\":%.17g,\"packets\":%" PRId64
                  "}\n",
                  m.flow_id, m.goodput_mbps, m.packets);
    }
    total += m.goodput_mbps;
  }
  std::fprintf(stderr,
               "%s: %d shards, %" PRIu64 " epochs, %" PRIu64
               " events, total goodput %.3f Mb/s\n",
               spec.name.c_str(), sim.num_shards(), sim.epochs_run(),
               sim.events_executed(), total);
  return 0;
}

int cmd_run(const std::string& path, bool quiet, int shards) {
  const WorldSpec spec = load_world_spec(path);
  if (shards > 0) return cmd_run_sharded(spec, quiet, shards);

  MetricSink sink(spec.name);
  BuiltWorld world(spec);
  world.run([&](const BuiltWorld::WindowReport& rep) {
    if (!quiet) print_window(rep);
    sink_window(sink, spec, rep);
  });

  const BuiltWorld::Summary& sum = world.summary();
  std::fprintf(stderr, "%s: %d windows of %.3g s\n", spec.name.c_str(),
               sum.windows, spec.window_s);
  std::fprintf(stderr,
               "  honest goodput  %.3f Mb/s mean (p25 %.3f, p75 %.3f)\n",
               sum.honest_mbps.mean(), sum.honest_mbps.p25(),
               sum.honest_mbps.p75());
  std::fprintf(stderr, "  greedy goodput  %.3f Mb/s mean\n",
               sum.greedy_mbps.mean());
  for (std::size_t r = 0; r < sum.ring_mbps.size(); ++r) {
    std::fprintf(stderr,
                 "  ring %zu (%5.0f-%5.0f m): %4" PRId64
                 " stations, %.3f Mb/s mean window total\n",
                 r, static_cast<double>(r) * spec.ring_m,
                 static_cast<double>(r + 1) * spec.ring_m,
                 sum.ring_stations[r], sum.ring_mbps[r].mean());
  }
  std::fprintf(stderr,
               "  handoffs %" PRId64 ", NAV detections %" PRId64
               ", spoof detections %" PRId64 "\n",
               sum.handoffs, sum.nav_detections, sum.spoof_detections);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string mode;
  bool quiet = false;
  int shards = 0;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--validate" || arg == "--describe" || arg == "--run") {
      if (!mode.empty()) return usage();
      mode = arg;
    } else if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--shards") {
      if (i + 1 >= argc) return usage();
      shards = std::atoi(argv[++i]);
      if (shards <= 0) return usage();
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return usage();
    } else {
      paths.push_back(arg);
    }
  }
  if (mode.empty() || paths.empty()) return usage();
  if (mode != "--validate" && paths.size() != 1) return usage();

  try {
    if (mode == "--validate") return cmd_validate(paths);
    if (mode == "--describe") {
      const WorldSpec spec = load_world_spec(paths[0]);
      std::fputs(describe(spec).c_str(), stdout);
      return 0;
    }
    return cmd_run(paths[0], quiet, shards);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "g80211_scenario: %s\n", e.what());
    return 1;
  }
}
