// Clean fixture: a would-be violation silenced by a rule-scoped NOLINT
// with a reason — the sanctioned escape hatch.
#include <chrono>

namespace g80211_fixture {

long coarse_uptime_ms() {
  using clock = std::chrono::steady_clock;  // NOLINT(nondet-steadyclock): fixture demonstrating the allowlist form; never feeds sim state
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             clock::now().time_since_epoch())
      .count();
}

}  // namespace g80211_fixture
