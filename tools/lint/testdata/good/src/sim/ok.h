// Clean fixture: #pragma once, self-contained, includes only <> headers.
#pragma once

#include <cstdint>
#include <string>

namespace g80211_fixture {

struct Event {
  std::uint64_t when = 0;
  std::string label;
};

inline std::uint64_t bump(std::uint64_t t) { return t + 1; }

}  // namespace g80211_fixture
