// Clean fixture: own header first, then system, then project includes,
// each run sorted; ordered-map iteration; no banned symbols.
#include "src/sim/ok.h"

#include <map>
#include <vector>

namespace g80211_fixture {

std::uint64_t total(const std::map<int, Event>& events) {
  std::uint64_t sum = 0;
  for (const auto& [id, ev] : events) {
    sum += ev.when + static_cast<std::uint64_t>(id);
  }
  return sum;
}

}  // namespace g80211_fixture
