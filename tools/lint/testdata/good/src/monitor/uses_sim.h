// Clean fixture: the allowed downward edge (monitor/ -> sim/).
#pragma once

#include "src/sim/ok.h"

namespace g80211_fixture {

inline Event monitored(std::uint64_t when) { return Event{when, "monitor"}; }

}  // namespace g80211_fixture
