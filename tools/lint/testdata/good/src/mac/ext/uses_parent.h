// Clean fixture: a nested layer ("mac/ext", longest-prefix matched)
// including its parent layer and the substrate below it.
#pragma once

#include "src/mac/uses_sim.h"
#include "src/sim/ok.h"

namespace g80211_fixture {

inline Event ext_tagged(std::uint64_t when) { return tagged(when); }

}  // namespace g80211_fixture
