// Clean fixture: the allowed downward edge (mac/ -> sim/).
#pragma once

#include "src/sim/ok.h"

namespace g80211_fixture {

inline Event tagged(std::uint64_t when) { return Event{when, "mac"}; }

}  // namespace g80211_fixture
