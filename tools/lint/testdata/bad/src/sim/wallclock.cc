// Seeded violation: wall-clock time inside the simulation core.
#include <chrono>
#include <ctime>

namespace g80211_fixture {

long long stamp() {
  const auto now = std::chrono::system_clock::now();
  return std::chrono::duration_cast<std::chrono::seconds>(
             now.time_since_epoch())
      .count();
}

long libc_stamp() { return static_cast<long>(time(nullptr)); }

}  // namespace g80211_fixture
