// Seeded violation: sim/ reaching up into mac/ — the exact inversion
// src/sim/trace.h used to have.
#pragma once

#include "src/mac/upper.h"

namespace g80211_fixture {

inline int peek() { return mac_state(); }

}  // namespace g80211_fixture
