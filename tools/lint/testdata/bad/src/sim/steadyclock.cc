// Seeded violation: steady_clock outside the runner/ allowlist.
#include <chrono>

namespace g80211_fixture {

long long ticks() {
  return std::chrono::steady_clock::now().time_since_epoch().count();
}

}  // namespace g80211_fixture
