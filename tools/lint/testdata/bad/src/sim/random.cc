// Seeded violations: every banned randomness source in one file.
#include <cstdlib>
#include <random>

namespace g80211_fixture {

int hardware_entropy() {
  std::random_device rd;
  return static_cast<int>(rd());
}

int libc_rand() { return rand(); }

int unseeded_engine() {
  std::mt19937 gen;
  return static_cast<int>(gen());
}

}  // namespace g80211_fixture
