// Seeded violation: iterating a hash container in bucket order.
#include <unordered_map>

namespace g80211_fixture {

int sum_in_bucket_order() {
  std::unordered_map<int, int> nav_by_node{{1, 2}, {3, 4}};
  int sum = 0;
  for (const auto& entry : nav_by_node) {
    sum += entry.second;
  }
  return sum;
}

}  // namespace g80211_fixture
