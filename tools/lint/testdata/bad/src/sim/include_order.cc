// Seeded violations: a system include trailing the project block, and an
// unsorted system run.
#include "src/sim/guarded.h"

#include <vector>
#include <cstdint>

namespace g80211_fixture {

std::uint64_t count() { return std::vector<int>{1, 2, 3}.size(); }

}  // namespace g80211_fixture
