// Seeded violation: #ifndef include guard instead of #pragma once.
#ifndef G80211_FIXTURE_GUARDED_H_
#define G80211_FIXTURE_GUARDED_H_

namespace g80211_fixture {

inline int guarded() { return 7; }

}  // namespace g80211_fixture

#endif  // G80211_FIXTURE_GUARDED_H_
