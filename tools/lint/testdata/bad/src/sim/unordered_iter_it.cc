// Seeded violation: the iterator-loop spelling of hash-order iteration.
// The range-for regex used to be the only detector, so this shape slipped
// through; it is exactly as order-dependent as the range-for.
#include <unordered_map>

namespace g80211_fixture {

int sum_in_bucket_order_it() {
  std::unordered_map<int, int> nav_by_node{{1, 2}, {3, 4}};
  int sum = 0;
  for (auto it = nav_by_node.begin(); it != nav_by_node.end(); ++it) {
    sum += it->second;
  }
  return sum;
}

}  // namespace g80211_fixture
