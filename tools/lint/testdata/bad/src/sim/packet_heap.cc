// Seeded violation: heap-allocating Packets instead of using the arena.
#include <memory>

namespace g80211_fixture {

struct Packet {
  int size_bytes = 0;
};

void* leak_one() { return new Packet; }

std::shared_ptr<Packet> shared_one() { return std::make_shared<Packet>(); }

std::unique_ptr<Packet> unique_one() { return std::make_unique<Packet>(); }

}  // namespace g80211_fixture
