// Seeded violation: an invariant that vanishes under NDEBUG.
#include <cassert>

namespace g80211_fixture {

int checked_halve(int n) {
  assert(n % 2 == 0);
  return n / 2;
}

}  // namespace g80211_fixture
