// Seeded violation: a lower layer reaching up into monitor/ — the
// direction the real contract forbids for every directory under src/
// (only tools/ and tests/ sit above the monitor).
#pragma once

#include "src/monitor/engine_stub.h"

namespace g80211_fixture {

inline int peek_monitor() { return monitor_state(); }

}  // namespace g80211_fixture
