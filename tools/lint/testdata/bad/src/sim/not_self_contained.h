// Seeded violation: names std::string but never includes <string>.
#pragma once

namespace g80211_fixture {

struct Label {
  std::string text;
};

}  // namespace g80211_fixture
