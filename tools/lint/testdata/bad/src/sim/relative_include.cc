// Seeded violation: project include not rooted at "src/".
#include "layering_violation.h"

namespace g80211_fixture {

int use() { return 1; }

}  // namespace g80211_fixture
