// Seeded violation: a parent layer reaching into its nested child
// ("mac" -> "mac/ext") — nesting shadows the parent, it does not grant
// the parent access. Mirrors the real contract: nothing in src/ may
// include scenario/spec/.
#pragma once

#include "src/mac/ext/stub.h"

namespace g80211_fixture {

inline int peek_ext() { return ext_state(); }

}  // namespace g80211_fixture
