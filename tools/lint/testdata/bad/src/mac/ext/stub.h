// Support fixture for the nested-layer violation: the header a plain
// mac/ file is forbidden from reaching (nested_dependency.h includes
// this). Itself clean.
#pragma once

namespace g80211_fixture {

inline int ext_state() { return 7; }

}  // namespace g80211_fixture
