// Support header for the layering fixture (itself clean).
#pragma once

namespace g80211_fixture {

inline int mac_state() { return 42; }

}  // namespace g80211_fixture
