// Support header for the monitor-layering fixture (itself clean).
#pragma once

namespace g80211_fixture {

inline int monitor_state() { return 7; }

}  // namespace g80211_fixture
