#!/usr/bin/env python3
"""Run clang-tidy over the project's own translation units, in parallel.

A thin, dependency-free stand-in for LLVM's run-clang-tidy: reads the
compilation database, keeps only first-party TUs (src/, bench/, tools/,
examples/ — no _deps or generated files), fans clang-tidy out over a
process pool, and exits non-zero if any file produced a diagnostic. The
check profile lives in .clang-tidy at the repo root; warnings are
promoted to errors here so CI cannot rot.

Usage: run_clang_tidy.py [--clang-tidy BIN] [-p BUILD_DIR] [paths...]
"""

import argparse
import concurrent.futures
import json
import os
import subprocess
import sys
from pathlib import Path

FIRST_PARTY = ("src/", "bench/", "tools/", "examples/")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--clang-tidy", default="clang-tidy")
    ap.add_argument("-p", "--build-dir", default="build",
                    help="directory holding compile_commands.json")
    ap.add_argument("--jobs", type=int, default=os.cpu_count() or 4)
    ap.add_argument("paths", nargs="*",
                    help="restrict to TUs whose path contains any of these")
    args = ap.parse_args()

    db_path = Path(args.build_dir) / "compile_commands.json"
    if not db_path.is_file():
        print(f"run_clang_tidy: {db_path} not found — configure with "
              "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON first", file=sys.stderr)
        return 2
    with open(db_path, encoding="utf-8") as f:
        db = json.load(f)

    root = Path.cwd().resolve()

    # A stale database silently shrinks the scan to whatever cmake knew
    # about last configure: every on-disk first-party .cc must be present,
    # or the run is not trustworthy and must die loudly.
    known = set()
    for entry in db:
        f = Path(entry["file"])
        if not f.is_absolute():
            f = Path(entry.get("directory", ".")) / f
        known.add(f.resolve())
    stale = [cc for cc in sorted((root / "src").rglob("*.cc"))
             if cc.resolve() not in known]
    if stale:
        names = ", ".join(str(s.relative_to(root)) for s in stale[:5])
        print(f"run_clang_tidy: {db_path} is stale — {len(stale)} "
              f"translation unit(s) on disk are not in the database "
              f"({names}{', ...' if len(stale) > 5 else ''}). Re-run "
              f"`cmake -B {args.build_dir} -S .` to regenerate it, then "
              "retry.", file=sys.stderr)
        return 2
    files = []
    for entry in db:
        f = Path(entry["file"])
        try:
            rel = str(f.resolve().relative_to(root))
        except ValueError:
            continue
        if not rel.startswith(FIRST_PARTY):
            continue
        if args.paths and not any(p in rel for p in args.paths):
            continue
        files.append(rel)
    files = sorted(set(files))
    if not files:
        print("run_clang_tidy: no first-party TUs in the database",
              file=sys.stderr)
        return 2

    def tidy_one(rel):
        proc = subprocess.run(
            [args.clang_tidy, "-p", args.build_dir, "--quiet",
             "--warnings-as-errors=*", rel],
            capture_output=True, text=True)
        return rel, proc.returncode, proc.stdout.strip()

    failed = 0
    with concurrent.futures.ThreadPoolExecutor(max_workers=args.jobs) as pool:
        for rel, rc, out in pool.map(tidy_one, files):
            if rc != 0:
                failed += 1
                print(f"== {rel}")
                if out:
                    print(out)
    print(f"run_clang_tidy: {len(files)} TU(s), {failed} with diagnostics",
          file=sys.stderr)
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
