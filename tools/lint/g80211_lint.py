#!/usr/bin/env python3
"""g80211_lint — project-specific static analysis for the 802.11 simulator.

The golden-output guards (fig1 hash, capture live-vs-replay equivalence,
the G80211_JOBS=1 bit-identity reference) are only meaningful while two
properties hold everywhere in src/: no hidden nondeterminism, and no
layering leaks that let low layers observe high-layer state. This tool
machine-checks both, plus a few hygiene rules the reviews kept repeating.

Rules (IDs are stable; tests and NOLINT suppressions reference them):

  layering              #include crosses a layer boundary not allowed by
                        tools/lint/deps.toml (or uses a project include
                        not rooted at "src/").
  nondet-random         std::random_device / rand() / srand() /
                        std::default_random_engine / default-constructed
                        std::mt19937 outside src/sim/rng.* — all draws
                        must flow through the seeded splitmix RNG.
  nondet-wallclock      wall-clock time (std::chrono::system_clock,
                        time(), gettimeofday, localtime, ...) anywhere in
                        src/: simulation output may depend only on sim
                        time.
  nondet-steadyclock    steady_clock / high_resolution_clock outside
                        src/runner/ (the campaign runner may measure
                        elapsed host time for progress reporting; the
                        engine may not).
  nondet-unordered-iter range-for or iterator loop over a
                        std::unordered_{map,set,...}:
                        bucket order is implementation-defined, so any
                        simulation-visible state it feeds breaks
                        bit-identity. Use an ordered container or sort
                        first; NOLINT with a reason if provably
                        order-independent.
  bare-assert           assert( in src/: compiles out under NDEBUG, i.e.
                        in exactly the builds the golden guards run.
                        Use G80211_CHECK / G80211_DCHECK (src/sim/check.h).
  packet-arena          `new Packet` / make_shared<Packet> /
                        make_unique<Packet> outside src/net/packet.h:
                        Packets must come from the arena via make_packet()
                        so the steady-state hot path never touches the
                        heap.
  pragma-once           header missing #pragma once, or carrying a
                        #ifndef include guard (the project standard is
                        #pragma once, uniformly).
  include-order         system includes before project includes (own
                        header first in a .cc), each contiguous run
                        sorted — keeps diffs clean and makes the
                        layering check's output stable.
  self-contained        a header that does not compile on its own
                        (g++ -fsyntax-only on a TU containing just that
                        #include).

Suppression: append  // NOLINT(<rule-id>): <reason>  to the offending
line. Only the named rules are suppressed; clang-tidy NOLINTs with other
ids do not silence this tool. See docs/static-analysis.md for policy.

Exit codes: 0 clean, 1 findings, 2 configuration/usage error.
"""

import argparse
import concurrent.futures
import re
import subprocess
import sys
import tempfile
import tomllib
from pathlib import Path

RULES = [
    "layering",
    "nondet-random",
    "nondet-wallclock",
    "nondet-steadyclock",
    "nondet-unordered-iter",
    "bare-assert",
    "packet-arena",
    "pragma-once",
    "include-order",
    "self-contained",
]

# Paths (relative, '/'-separated prefixes) exempt from specific rules.
ALLOW = {
    "nondet-random": ("src/sim/rng.h", "src/sim/rng.cc"),
    "nondet-steadyclock": ("src/runner/",),
    "bare-assert": ("src/sim/check.h",),
    "packet-arena": ("src/net/packet.h",),
}

INCLUDE_RE = re.compile(r'^\s*#\s*include\s+(["<])([^">]+)[">]')
NOLINT_RE = re.compile(r"NOLINT\(([^)]*)\)")

RANDOM_RE = re.compile(
    r"std::random_device"
    r"|(?<![\w:.])srand\s*\("
    r"|(?<![\w:.])rand\s*\("
    r"|std::default_random_engine"
    r"|\bstd::mt19937(?:_64)?\s+\w+\s*;"
)
WALLCLOCK_RE = re.compile(
    r"system_clock|gettimeofday|(?<![\w.])time\s*\(|\blocaltime\b|\bgmtime\b"
    r"|\bstrftime\b|(?<![\w.])clock\s*\("
)
STEADY_RE = re.compile(r"steady_clock|high_resolution_clock")
UNORDERED_DECL_RE = re.compile(
    r"unordered_(?:map|set|multimap|multiset)\s*<[^;{]*>\s+(\w+)\s*[;{=]"
)
ASSERT_RE = re.compile(r"(?<![\w.])assert\s*\(")
GUARD_RE = re.compile(r"^\s*#\s*ifndef\s+\w+_H_?\b")
# Heap-allocating a Packet bypasses the arena (src/net/packet.h): `new
# Packet` and smart-pointer factories over Packet. `Packet\b` keeps
# PacketArena/PacketPtr out; `[^\[]` keeps make_unique<Packet[]> (the
# arena's own chunk storage) out.
PACKET_HEAP_RE = re.compile(
    r"\bnew\s+Packet\b"
    r"|make_shared\s*<\s*Packet\s*>"
    r"|make_unique\s*<\s*Packet\s*>"
)


def allowed(rule, rel):
    return any(rel == p or rel.startswith(p) for p in ALLOW.get(rule, ()))


class Findings:
    def __init__(self):
        self.items = []

    def add(self, rel, line_no, rule, msg, raw_line=""):
        m = NOLINT_RE.search(raw_line)
        if m and rule in (s.strip() for s in m.group(1).split(",")):
            return
        self.items.append((str(rel), line_no, rule, msg))


def strip_comments(text):
    """Blank out comments and string/char literal contents, keeping line
    structure, so rule regexes never fire on prose or log strings."""
    out = []
    i, n = 0, len(text)
    state = None  # None | 'line' | 'block' | '"' | "'"
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state is None:
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c in "\"'":
                state = c
                out.append(c)
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = None
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = None
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        else:  # inside a string/char literal
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == state:
                state = None
                out.append(c)
            else:
                out.append(c if c == "\n" else " ")
        i += 1
    return "".join(out)


def load_layers(deps_path):
    try:
        with open(deps_path, "rb") as f:
            cfg = tomllib.load(f)
    except (OSError, tomllib.TOMLDecodeError) as e:
        print(f"g80211_lint: cannot read {deps_path}: {e}", file=sys.stderr)
        sys.exit(2)
    layers = cfg.get("layers")
    if not isinstance(layers, dict):
        print(f"g80211_lint: {deps_path} has no [layers] table", file=sys.stderr)
        sys.exit(2)
    exceptions = cfg.get("exceptions", {})
    return layers, exceptions


def live_includes(raw, stripped):
    """(line_no, kind, target) for every non-commented-out #include.

    Paths are parsed from the raw line (the comment stripper blanks
    string-literal contents); the stripped line gates out includes that
    sit inside comments.
    """
    incs = []
    for i, (raw_line, s_line) in enumerate(zip(raw, stripped), 1):
        m = INCLUDE_RE.match(raw_line)
        if m and s_line.lstrip().startswith("#"):
            incs.append((i, m.group(1), m.group(2)))
    return incs


def layer_name(parts, layers):
    """Longest [layers] key matching the directory path under src/.

    `parts` are the path components after "src", excluding the filename.
    Nested layers ("scenario/spec") shadow their parent for files inside
    them; a nested directory with no own entry inherits the parent layer.
    """
    for depth in range(len(parts), 0, -1):
        candidate = "/".join(parts[:depth])
        if candidate in layers:
            return candidate
    return parts[0]


def check_layering(rel, raw, stripped, layers, exceptions, out):
    parts = Path(rel).parts
    if len(parts) < 3 or parts[0] != "src":
        return
    layer = layer_name(parts[1:-1], layers)
    if layer not in layers:
        out.add(rel, 1, "layering", f"directory src/{layer}/ missing from deps.toml [layers]")
        return
    allowed_layers = set(layers[layer]) | {layer}
    for i, kind, target in live_includes(raw, stripped):
        if kind != '"':
            continue
        if not target.startswith("src/"):
            out.add(rel, i, "layering",
                    f'project include "{target}" must be repo-root-relative ("src/...")',
                    raw[i - 1])
            continue
        tparts = Path(target).parts
        if len(tparts) < 3:
            continue
        tlayer = layer_name(tparts[1:-1], layers)
        if tlayer in allowed_layers:
            continue
        exc = exceptions.get(f"{layer} -> {tlayer}", [])
        if target in exc:
            continue
        out.add(rel, i, "layering",
                f"src/{layer}/ may not include src/{tlayer}/ "
                f"(allowed: {', '.join(sorted(allowed_layers))}; see tools/lint/deps.toml)",
                raw[i - 1])


def check_determinism(rel, raw, stripped, out):
    unordered_vars = set()
    for line in stripped:
        unordered_vars.update(UNORDERED_DECL_RE.findall(line))
    for i, line in enumerate(stripped, 1):
        if not allowed("nondet-random", rel):
            m = RANDOM_RE.search(line)
            if m:
                out.add(rel, i, "nondet-random",
                        f"'{m.group(0).strip()}': all randomness must come from the "
                        "seeded g80211::Rng (src/sim/rng.h)", raw[i - 1])
        m = WALLCLOCK_RE.search(line)
        if m:
            out.add(rel, i, "nondet-wallclock",
                    f"'{m.group(0).strip()}': wall-clock time in src/ breaks "
                    "reproducibility; use sim time (Scheduler::now)", raw[i - 1])
        if not allowed("nondet-steadyclock", rel):
            m = STEADY_RE.search(line)
            if m:
                out.add(rel, i, "nondet-steadyclock",
                        f"'{m.group(0)}' outside src/runner/: host timing is for the "
                        "campaign runner only", raw[i - 1])
        fm = re.search(r"for\s*\([^();]*:\s*([^)]+)\)", line)
        if fm:
            range_expr = fm.group(1).strip()
            tokens = set(re.findall(r"\w+", range_expr))
            if "unordered_map" in range_expr or "unordered_set" in range_expr \
                    or tokens & unordered_vars:
                out.add(rel, i, "nondet-unordered-iter",
                        f"iteration over unordered container '{range_expr}': bucket "
                        "order is implementation-defined", raw[i - 1])
        # Iterator-style loops over the same containers: `for (auto it =
        # m.begin(); ...)`. This regex is the fast pre-check; the AST
        # analyzer (tools/analyze/g80211_ast.py) is authoritative and also
        # catches member containers and std::accumulate-style iterator
        # pairs that no line regex can see.
        im = re.search(r"for\s*\([^;:()]*[=(]\s*(\w+)\s*\.\s*c?begin\s*\(",
                       line)
        if im and im.group(1) in unordered_vars:
            out.add(rel, i, "nondet-unordered-iter",
                    f"iterator loop over unordered container '{im.group(1)}': "
                    "bucket order is implementation-defined", raw[i - 1])


def check_hygiene(rel, raw, stripped, out):
    if not allowed("bare-assert", rel):
        for i, line in enumerate(stripped, 1):
            if ASSERT_RE.search(line):
                out.add(rel, i, "bare-assert",
                        "bare assert() compiles out under NDEBUG; use G80211_CHECK "
                        "or G80211_DCHECK (src/sim/check.h)", raw[i - 1])
    if not allowed("packet-arena", rel):
        for i, line in enumerate(stripped, 1):
            m = PACKET_HEAP_RE.search(line)
            if m:
                out.add(rel, i, "packet-arena",
                        f"'{m.group(0).strip()}': Packets are arena-allocated; "
                        "use make_packet() (src/net/packet.h) so steady state "
                        "stays heap-free", raw[i - 1])
    if rel.endswith(".h"):
        has_pragma = any(line.strip() == "#pragma once" for line in stripped)
        if not has_pragma:
            out.add(rel, 1, "pragma-once", "header missing #pragma once")
        for i, line in enumerate(stripped, 1):
            if GUARD_RE.match(line):
                out.add(rel, i, "pragma-once",
                        "#ifndef include guard: the project standard is #pragma once",
                        raw[i - 1])


def check_include_order(rel, raw, stripped, out):
    incs = live_includes(raw, stripped)
    if not incs:
        return
    own_header = None
    if rel.endswith((".cc", ".cpp")):
        stem = str(Path(rel).with_suffix(""))
        first = incs[0]
        if first[1] == '"' and str(Path(first[2]).with_suffix("")) == stem:
            own_header = first
            incs = incs[1:]
    seen_project = False
    for i, kind, target in incs:
        if kind == '"':
            seen_project = True
        elif seen_project:
            out.add(rel, i, "include-order",
                    f"system include <{target}> after project includes"
                    + (" (own header first, then system, then project)"
                       if own_header else ""),
                    raw[i - 1])
    # Sortedness within each contiguous same-kind run.
    prev = None  # (line_no, kind, target)
    for i, kind, target in incs:
        if prev is not None and i == prev[0] + 1 and kind == prev[1] \
                and target < prev[2]:
            out.add(rel, i, "include-order",
                    f'"{target}" sorts before "{prev[2]}" — keep include runs '
                    "alphabetical", raw[i - 1])
        prev = (i, kind, target)


def check_self_contained(root, rel_headers, cxx, out, jobs):
    def compile_one(rel):
        with tempfile.NamedTemporaryFile("w", suffix=".cc", delete=False) as tu:
            tu.write(f'#include "{rel}"\n')
            tu_path = tu.name
        try:
            proc = subprocess.run(
                [cxx, "-std=c++20", "-fsyntax-only", "-I", str(root), tu_path],
                capture_output=True, text=True)
            return rel, proc.returncode, proc.stderr.strip()
        finally:
            Path(tu_path).unlink(missing_ok=True)

    with concurrent.futures.ThreadPoolExecutor(max_workers=jobs) as pool:
        for rel, rc, err in pool.map(compile_one, rel_headers):
            if rc != 0:
                first = err.splitlines()[0] if err else f"{cxx} failed"
                out.add(rel, 1, "self-contained",
                        f"header does not compile standalone: {first}")


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("paths", nargs="*",
                    help="files/dirs to scan, relative to --root (default: src)")
    ap.add_argument("--root", type=Path,
                    default=Path(__file__).resolve().parents[2],
                    help="repository root (default: two levels above this script)")
    ap.add_argument("--deps", type=Path, default=None,
                    help="layering spec (default: <root>/tools/lint/deps.toml, "
                         "falling back to this script's directory)")
    ap.add_argument("--cxx", default="g++", help="compiler for self-contained checks")
    ap.add_argument("--jobs", type=int, default=8,
                    help="parallelism for self-contained compiles")
    ap.add_argument("--no-self-contained", action="store_true",
                    help="skip the (compiler-invoking) header self-containedness rule")
    ap.add_argument("--list-rules", action="store_true", help="print rule IDs and exit")
    args = ap.parse_args()

    if args.list_rules:
        for r in RULES:
            print(r)
        return 0

    root = args.root.resolve()
    deps_path = args.deps
    if deps_path is None:
        deps_path = root / "tools" / "lint" / "deps.toml"
        if not deps_path.is_file():
            deps_path = Path(__file__).resolve().parent / "deps.toml"
    layers, exceptions = load_layers(deps_path)

    targets = args.paths or ["src"]
    files = []
    for t in targets:
        p = (root / t) if not Path(t).is_absolute() else Path(t)
        if p.is_dir():
            files.extend(sorted(q for q in p.rglob("*")
                                if q.suffix in (".h", ".cc", ".cpp")))
        elif p.is_file():
            files.append(p)
        else:
            print(f"g80211_lint: no such path: {t}", file=sys.stderr)
            return 2

    out = Findings()
    headers = []
    for f in files:
        try:
            rel = str(f.resolve().relative_to(root))
        except ValueError:
            rel = str(f)
        text = f.read_text(encoding="utf-8", errors="replace")
        raw = text.split("\n")
        stripped = strip_comments(text).split("\n")
        check_layering(rel, raw, stripped, layers, exceptions, out)
        check_determinism(rel, raw, stripped, out)
        check_hygiene(rel, raw, stripped, out)
        check_include_order(rel, raw, stripped, out)
        if f.suffix == ".h":
            headers.append(rel)

    if not args.no_self_contained and headers:
        check_self_contained(root, headers, args.cxx, out, args.jobs)

    for path, line_no, rule, msg in sorted(out.items):
        print(f"{path}:{line_no}: [{rule}] {msg}")
    if out.items:
        print(f"g80211_lint: {len(out.items)} finding(s) in {len(files)} file(s)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
