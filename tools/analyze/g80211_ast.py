#!/usr/bin/env python3
"""g80211_ast — AST-grade contract analyzer for the 802.11 simulator.

The regex lint (tools/lint/g80211_lint.py) is the fast line-level
pre-check; this tool is the authoritative structural layer. It parses
every translation unit named by the build's compile_commands.json (plus
the headers under the scanned roots) into a lightweight C++ AST — scopes,
classes and their members, function definitions with their local/param
types, lambda expressions with their capture lists, call expressions,
loop headers — and proves five project contracts that line regexes
structurally cannot see:

  callback-capture      a lambda handed to Scheduler::at/after, a Timer,
                        or ThreadPool::submit/submit_to must not capture
                        stack locals by reference ([&], [&x]) or by raw
                        pointer ([p = &x]). The callback is copied into
                        the scheduler's InplaceFunction slab (or the
                        pool's queue) and outlives the calling frame, so
                        such captures dangle. `this` and by-value
                        captures are fine.
  hot-path-alloc        call-graph reachability from every G80211_HOT
                        root (src/sim/hot.h): `new`, make_unique/shared,
                        malloc, and allocating container methods
                        (push_back, insert, resize, map operator[], ...)
                        are banned anywhere reachable. PacketArena /
                        make_packet are exempt by design; a function may
                        excuse itself with G80211_ALLOC_OK("why").
  nondet-unordered-iter iteration over std::unordered_* in any form the
                        AST can see — iterator for/while loops,
                        range-for (including via member/param types the
                        regex cannot resolve), and iterator-pair calls
                        such as std::accumulate(m.begin(), m.end(), ..).
                        Bucket order is implementation-defined, so any
                        simulation-visible state it feeds breaks the
                        bit-identity contracts.
  nondet-pointer-key    an ordered associative container keyed on a raw
                        pointer (std::set<T*>, std::map<T*, V>):
                        iteration order is address order, which varies
                        run to run and across shard counts.
  shard-isolation       in the sharded engine sources
                        (src/scenario/sharded.*): no mutable
                        namespace-scope or function-static state (it
                        would be shared by every shard's Sim), and the
                        payload type of every EpochMailbox must carry no
                        pointer/reference members — boundary packets
                        cross shards BY VALUE.
  event-path-throw      a callback fired from the scheduler slab must be
                        noexcept or route failures through G80211_CHECK:
                        a literal `throw` in the callback body, or in
                        any non-noexcept function reachable from it,
                        escapes through EventPool::fire with the slab
                        slot already released. (G80211_CHECK itself is
                        the sanctioned thrower; src/sim/check.h is
                        exempt.)

Frontend: a self-contained structural C++ parser (tokenizer + scope
tracker; no preprocessing, no name mangling). This container ships no
clang frontend, no libclang shared library and no clang Python bindings,
so the builtin frontend is the pinned backend everywhere (local, ctest,
CI); `--frontend` exists as the seam for a libclang adapter and fails
loudly when asked for one that is not installed. The analyzer is driven
by compile_commands.json: a missing or stale database (a .cc on disk
that the build never compiled) is a configuration error (exit 2), never
a silently-shorter scan.

Per-file parse results are cached under <build>/.g80211_ast_cache keyed
on (file content, tool version, compile_commands.json content), so a
gating CI run after a no-op rebuild re-parses nothing.

Suppression: append  // NOLINT(<rule-id>): <reason>  to the offending
line — the same rule-scoped policy as g80211_lint. Exit codes: 0 clean,
1 findings, 2 configuration/usage error.
"""

import argparse
import hashlib
import json
import re
import sys
from pathlib import Path

TOOL_VERSION = 3

RULES = [
    "callback-capture",
    "hot-path-alloc",
    "nondet-unordered-iter",
    "nondet-pointer-key",
    "shard-isolation",
    "event-path-throw",
]

NOLINT_RE = re.compile(r"NOLINT\(([^)]*)\)")
NOLINT_NEXT_RE = re.compile(r"NOLINTNEXTLINE\(([^)]*)\)")

KEYWORDS = {
    "alignas", "alignof", "auto", "bool", "break", "case", "catch", "char",
    "class", "const", "consteval", "constexpr", "constinit", "continue",
    "co_await", "co_return", "co_yield", "decltype", "default", "delete",
    "do", "double", "else", "enum", "explicit", "extern", "false", "final",
    "float", "for", "friend", "goto", "if", "inline", "int", "long",
    "mutable", "namespace", "new", "noexcept", "nullptr", "operator",
    "override", "private", "protected", "public", "register", "return",
    "short", "signed", "sizeof", "static", "struct", "switch", "template",
    "this", "throw", "true", "try", "typedef", "typeid", "typename",
    "union", "unsigned", "using", "virtual", "void", "volatile", "while",
}

# Callback registrars whose callable argument is stored beyond the frame:
# method name -> class marker the receiver's type must contain (falling
# back to a receiver-name heuristic when the type cannot be resolved).
CB_METHODS = {
    "at": ("Scheduler", ("sched", "scheduler")),
    "after": ("Scheduler", ("sched", "scheduler")),
    "submit": ("ThreadPool", ("pool",)),
    "submit_to": ("ThreadPool", ("pool",)),
}

ALLOC_FREE_FNS = {"make_unique", "make_shared", "malloc", "calloc",
                  "realloc", "strdup", "aligned_alloc"}
ALLOC_METHODS = {"push_back", "emplace_back", "emplace", "emplace_front",
                 "push_front", "insert", "insert_or_assign", "try_emplace",
                 "resize", "reserve", "assign", "append", "push"}
CONTAINER_MARKERS = ("vector", "deque", "string", "map", "set", "list",
                     "function", "queue", "optional")
ITER_PAIR_FNS = {"accumulate", "reduce", "for_each", "transform", "copy",
                 "copy_if", "partial_sum", "inner_product", "all_of",
                 "any_of", "none_of", "count_if", "find_if"}
# Accessor methods whose return type the parser cannot see but the rules
# need: receiver spelled `x.scheduler().at(...)`.
RECEIVER_HINTS = {"scheduler": "Scheduler&", "arena": "PacketArena&",
                  "error_model": "ErrorModel&"}

TOKEN_RE = re.compile(
    r"[A-Za-z_]\w*"
    r"|\.?\d(?:[\w.]|[eEpP][+-])*"
    r"|::|->|\+\+|--|<<=|>>=|<<|>>|<=|>=|==|!=|&&|\|\||[-+*/%&|^!=<>]="
    r"|[{}()\[\];,.?:~^%!<>=&|*/+-]"
)


# ---------------------------------------------------------------------------
# Source preparation: comment/string blanking (NOLINT collected first).

def blank_comments(text):
    """Blank comments and string/char contents, preserving line structure.

    Handles raw strings (R"delim(...)delim"). Returns the blanked text.
    """
    out = []
    i, n = 0, len(text)
    state = None  # None | 'line' | 'block' | '"' | "'"
    raw_end = None
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if state is None:
            if c == "/" and nxt == "/":
                state = "line"
                out.append("  ")
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block"
                out.append("  ")
                i += 2
                continue
            if c == "R" and nxt == '"' and (i == 0 or not (text[i - 1].isalnum() or text[i - 1] == "_")):
                m = re.match(r'R"([^(\s]*)\(', text[i:])
                if m:
                    raw_end = ")" + m.group(1) + '"'
                    state = "raw"
                    out.append('R"' + " " * (len(m.group(0)) - 2))
                    i += len(m.group(0))
                    continue
            if c in "\"'":
                state = c
                out.append(c)
                i += 1
                continue
            out.append(c)
        elif state == "line":
            if c == "\n":
                state = None
                out.append(c)
            else:
                out.append(" ")
        elif state == "block":
            if c == "*" and nxt == "/":
                state = None
                out.append("  ")
                i += 2
                continue
            out.append(c if c == "\n" else " ")
        elif state == "raw":
            if text.startswith(raw_end, i):
                out.append(" " * (len(raw_end) - 1) + '"')
                i += len(raw_end)
                state = None
                continue
            out.append(c if c == "\n" else " ")
        else:  # string/char literal
            if c == "\\":
                out.append("  ")
                i += 2
                continue
            if c == state:
                state = None
                out.append(c)
            else:
                out.append(c if c == "\n" else " ")
        i += 1
    return "".join(out)


def blank_preprocessor(text):
    """Blank preprocessor directives (incl. backslash continuations): the
    structural parser does not preprocess, so directive tokens must not
    leak into the scope walker. NOLINT comments were collected from the
    raw text already; macro names used in code (G80211_HOT, G80211_CHECK)
    are recognized as plain tokens."""
    out = []
    cont = False
    for line in text.split("\n"):
        if cont or line.lstrip().startswith("#"):
            cont = line.rstrip().endswith("\\")
            out.append("")
        else:
            cont = False
            out.append(line)
    return "\n".join(out)


def tokenize(blanked):
    """-> list of (text, line). Strings were blanked to empty literals."""
    toks = []
    line = 1
    pos = 0
    for m in TOKEN_RE.finditer(blanked):
        line += blanked.count("\n", pos, m.start())
        pos = m.start()
        toks.append((m.group(0), line))
    return toks


def match_brackets(toks):
    """Match () {} [] in one pass -> dict open_index -> close_index."""
    match = {}
    stack = []
    pairs = {"(": ")", "{": "}", "[": "]"}
    closers = {")": "(", "}": "{", "]": "["}
    for i, (t, _) in enumerate(toks):
        if t in pairs:
            stack.append((t, i))
        elif t in closers:
            # Tolerate imbalance (macro soup): pop to nearest same-kind open.
            for j in range(len(stack) - 1, -1, -1):
                if stack[j][0] == closers[t]:
                    match[stack[j][1]] = i
                    del stack[j:]
                    break
    return match


# ---------------------------------------------------------------------------
# Structural parse -> FileIndex (plain dicts; JSON-serializable for cache).

def new_function(qname, name, cls, line, file):
    return {
        "qname": qname, "name": name, "cls": cls, "line": line, "file": file,
        "noexcept": False, "hot": False, "alloc_ok": False,
        "params": {}, "locals": {}, "local_lines": {}, "lambda_locals": {},
        "calls": [], "subscripts": [], "news": [], "allocfns": [],
        "throws": [], "rangefors": [], "iterloops": [], "algoiters": [],
        "lambdas": [],
    }


def new_lambda(line, encl):
    return {"line": line, "encl": encl, "captures": [], "noexcept": False,
            "argof": None, "calls": [], "subscripts": [], "news": [],
            "allocfns": [], "throws": [], "rangefors": [], "iterloops": [],
            "algoiters": []}


class Parser:
    """One file -> FileIndex. Heuristic but structural: tracks namespace /
    class / function scopes, member and local declarations with their type
    spellings, lambdas with parsed capture lists, and per-function event
    streams (calls, allocations, throws, loop headers)."""

    def __init__(self, rel, text):
        self.rel = rel
        self.toks = tokenize(blank_preprocessor(blank_comments(text)))
        self.match = match_brackets(self.toks)
        self.index = {
            "version": TOOL_VERSION, "file": rel,
            "functions": [], "classes": {}, "globals": [],
            "mailbox_payloads": [], "decl_hot": [], "decl_noexcept": [],
        }
        self.scan_mailboxes()
        self.parse_scope(0, len(self.toks), ns=[], cls=None)

    # -- helpers ------------------------------------------------------------

    def t(self, i):
        return self.toks[i][0] if 0 <= i < len(self.toks) else ""

    def line(self, i):
        return self.toks[i][1] if 0 <= i < len(self.toks) else 0

    def scan_mailboxes(self):
        toks = self.toks
        for i in range(len(toks) - 3):
            if toks[i][0] == "EpochMailbox" and toks[i + 1][0] == "<":
                j = i + 2
                name = None
                while j < len(toks) and toks[j][0] not in (">", ">>", ","):
                    if toks[j][0] not in ("::",) and toks[j][0][0].isalpha():
                        name = toks[j][0]
                    j += 1
                if name:
                    self.index["mailbox_payloads"].append(name)

    def skip_angles(self, i):
        """i at '<' -> index past the matching '>'. Conservative: gives up
        at ';' or '{' (comparison, not template argument list)."""
        depth = 0
        j = i
        while j < len(self.toks):
            t = self.t(j)
            if t == "<":
                depth += 1
            elif t == ">":
                depth -= 1
                if depth == 0:
                    return j + 1
            elif t == ">>":
                depth -= 2
                if depth <= 0:
                    return j + 1
            elif t in (";", "{"):
                return i + 1
            j += 1
        return i + 1

    # -- declaration scanner (namespace / class scope) ----------------------

    def parse_scope(self, start, end, ns, cls):
        i = start
        decl = []  # (token, index) collected since the last boundary
        while i < end:
            t = self.t(i)
            if t == "namespace":
                name = self.t(i + 1) if self.t(i + 1) != "{" else ""
                j = i + 1
                while j < end and self.t(j) != "{" and self.t(j) != ";":
                    j += 1
                if self.t(j) == "{":
                    close = self.match.get(j, end)
                    self.parse_scope(j + 1, close, ns + [name] if name else ns, cls)
                    i = close + 1
                else:
                    i = j + 1
                decl = []
                continue
            if t == "template":
                j = i + 1
                if self.t(j) == "<":
                    j = self.skip_angles(j)
                i = j
                continue
            if t in ("using", "typedef", "friend", "static_assert", "extern"):
                j = i
                while j < end and self.t(j) != ";":
                    if self.t(j) in ("(", "{", "["):
                        j = self.match.get(j, j) + 1
                        continue
                    j += 1
                i = j + 1
                decl = []
                continue
            if t in ("public", "private", "protected") and self.t(i + 1) == ":":
                i += 2
                decl = []
                continue
            if t == "enum":
                j = i
                while j < end and self.t(j) not in ("{", ";"):
                    j += 1
                if self.t(j) == "{":
                    j = self.match.get(j, end) + 1
                while j < end and self.t(j) != ";":
                    j += 1
                i = j + 1
                decl = []
                continue
            if t in ("class", "struct", "union") and not decl:
                # Distinguish a definition (braces before ';') from a
                # forward declaration / elaborated return type.
                j = i + 1
                name = None
                while j < end and self.t(j) not in ("{", ";", "("):
                    if name is None and re.match(r"[A-Za-z_]\w*$", self.t(j)) \
                            and self.t(j) not in ("final",):
                        name = self.t(j)
                    if self.t(j) == "<":
                        j = self.skip_angles(j)
                        continue
                    j += 1
                if self.t(j) == "{" and name:
                    close = self.match.get(j, end)
                    self.parse_scope(j + 1, close, ns, name)
                    i = close + 1
                    # skip trailing `;` or variable names
                    while i < end and self.t(i) != ";":
                        i += 1
                    i += 1
                    decl = []
                    continue
                # fall through: treat as part of a declaration (e.g. return
                # type `struct X f();` — rare) or forward decl
                if self.t(j) == ";":
                    i = j + 1
                    decl = []
                    continue
            if t == "[" and self.t(i + 1) == "[":
                # attribute: skip to ]]
                close = self.match.get(i)
                i = (close + 1) if close is not None else i + 1
                continue
            if t == "(":
                close = self.match.get(i)
                decl.append((t, i))
                if close is None:
                    i += 1
                    continue
                decl.append((")", close))
                i = close + 1
                continue
            if t == "=":
                # variable initializer: skip to ';' at bracket depth 0
                j = i
                while j < end:
                    tj = self.t(j)
                    if tj in ("(", "{", "["):
                        j = self.match.get(j, j) + 1
                        continue
                    if tj == ";":
                        break
                    j += 1
                self.finish_decl(decl, ns, cls, has_init=True)
                decl = []
                i = j + 1
                continue
            if t == "{":
                close = self.match.get(i, end)
                if self.decl_is_function(decl):
                    self.finish_function(decl, i, close, ns, cls)
                else:
                    # brace initializer or stray block; a struct def was
                    # handled above.
                    self.finish_decl(decl, ns, cls, has_init=True)
                decl = []
                i = close + 1
                continue
            if t == ";":
                self.finish_decl(decl, ns, cls, has_init=False)
                decl = []
                i += 1
                continue
            if t == "<" and decl and re.match(r"[A-Za-z_]", decl[-1][0]):
                j = self.skip_angles(i)
                # keep the raw span so member types can be reconstructed
                decl.append(("".join(self.t(k) for k in range(i, j)), i))
                i = j
                continue
            decl.append((t, i))
            i += 1

    def decl_is_function(self, decl):
        """decl tokens end (modulo specifiers / ctor init list) with a
        parenthesized parameter list directly after a name."""
        texts = [d[0] for d in decl]
        if "(" not in texts:
            return False
        # find last top-level "(...)" group start whose preceding token is
        # a name (or operator); everything after its ")" must be specifiers
        # or a ctor init list.
        k = len(texts) - 1
        # strip trailing specifier tokens
        SPEC = {"const", "noexcept", "override", "final", "mutable", "&", "&&",
                "try"}
        while k >= 0 and (texts[k] in SPEC):
            k -= 1
        if k >= 0 and texts[k] == ")":
            return True
        # ctor init list: ...) : member(...), member(...)
        if ")" in texts:
            last_close = len(texts) - 1 - texts[::-1].index(")")
            rest = texts[last_close + 1:]
            if rest and rest[0] == ":":
                return True
            # trailing return type: ) -> Type
            if rest and rest[0] == "->":
                return True
        return False

    def finish_decl(self, decl, ns, cls, has_init):
        """A declaration ending in ';' or an initializer at namespace or
        class scope: a member/global variable or a function declaration."""
        if not decl:
            return
        texts = [d[0] for d in decl]
        line = self.line(decl[0][1])
        if "(" in texts and self.decl_is_function(decl):
            # function declaration (no body): record hot/noexcept markers
            name = self.decl_fn_name(decl)
            if name:
                qname = f"{cls}::{name}" if cls else name
                if "G80211_HOT" in texts:
                    self.index["decl_hot"].append(qname)
                close_positions = [k for k, x in enumerate(texts) if x == ")"]
                if close_positions:
                    after = texts[close_positions[-1]:]
                    if "noexcept" in after:
                        self.index["decl_noexcept"].append(qname)
            return
        # variable: last identifier token is the name, the rest the type
        name = None
        name_pos = None
        for k in range(len(texts) - 1, -1, -1):
            if re.match(r"[A-Za-z_]\w*$", texts[k]) and texts[k] not in KEYWORDS:
                name = texts[k]
                name_pos = k
                break
        if name is None:
            return
        type_str = " ".join(texts[:name_pos])
        if not type_str or texts[0] in ("return", "delete", "throw", "goto"):
            return
        is_const = "const" in texts[:name_pos] or "constexpr" in texts[:name_pos]
        is_static = "static" in texts[:name_pos]
        if cls:
            self.index["classes"].setdefault(cls, {})[name] = [type_str, line]
        else:
            self.index["globals"].append(
                [line, name, type_str, is_const, is_static])

    def decl_fn_name(self, decl):
        texts = [d[0] for d in decl]
        try:
            first_open = texts.index("(")
        except ValueError:
            return None
        k = first_open - 1
        if k >= 0 and texts[k] == "operator":
            return None
        # A::B::name -> name; also skip destructor '~'
        while k >= 0 and texts[k] in ("~",):
            k -= 1
        if k >= 0 and re.match(r"[A-Za-z_]\w*$", texts[k]) \
                and texts[k] not in KEYWORDS:
            return texts[k]
        return None

    def finish_function(self, decl, body_open, body_close, ns, cls):
        texts = [d[0] for d in decl]
        name = self.decl_fn_name(decl)
        if name is None:
            name = "operator"
        # explicit qualification A::name in an out-of-line definition
        try:
            first_open = texts.index("(")
        except ValueError:
            return
        qual = None
        k = first_open - 1
        while k >= 0 and texts[k] in ("~",):
            k -= 1
        if k - 2 >= 0 and texts[k - 1] == "::" and \
                re.match(r"[A-Za-z_]\w*$", texts[k - 2]):
            qual = texts[k - 2]
        owner = cls or qual
        qname = f"{owner}::{name}" if owner else name
        fn = new_function(qname, name, owner, self.line(decl[0][1]), self.rel)
        if "G80211_HOT" in texts:
            fn["hot"] = True
        # params from the parameter list
        open_idx = None
        for tok, idx in decl:
            if tok == "(":
                open_idx = idx
                break
        close_idx = self.match.get(open_idx) if open_idx is not None else None
        if open_idx is not None and close_idx is not None:
            self.parse_params(fn, open_idx + 1, close_idx)
            # specifiers between ')' and the body '{' (includes init list)
            spec = [self.t(j) for j in range(close_idx + 1, body_open)]
            if "noexcept" in spec:
                fn["noexcept"] = True
            # scan ctor init list (lambdas handed to Timer members live here)
            self.scan_body(fn, close_idx + 1, body_open)
        self.scan_body(fn, body_open + 1, body_close)
        self.index["functions"].append(fn)

    def parse_params(self, fn, start, end):
        depth = 0
        item = []
        def flush(item):
            texts = [t for t, _ in item]
            if not texts:
                return
            for k in range(len(texts) - 1, -1, -1):
                if re.match(r"[A-Za-z_]\w*$", texts[k]) \
                        and texts[k] not in KEYWORDS:
                    if k > 0:  # need at least one type token before the name
                        fn["params"][texts[k]] = " ".join(texts[:k])
                    return
        j = start
        while j < end:
            t = self.t(j)
            if t in ("(", "{", "["):
                j = self.match.get(j, j) + 1
                continue
            if t == "<":
                j = self.skip_angles(j)
                item.append(("<>", j))
                continue
            if t == "," and depth == 0:
                flush(item)
                item = []
                j += 1
                continue
            if t == "=":  # default argument: ignore the rest of the item
                while j < end and self.t(j) != ",":
                    if self.t(j) in ("(", "{", "["):
                        j = self.match.get(j, j) + 1
                        continue
                    j += 1
                continue
            item.append((t, j))
            j += 1
        flush(item)

    # -- statement/body scanner --------------------------------------------

    LAMBDA_PREV = {"(", ",", "=", "return", "{", ";", ":", "?", "&&", "||",
                   "!", "+", "-", "*", "<<", ">>", "==", "!=", "<", ">",
                   "co_return", "case", "["}

    def scan_body(self, fn, start, end):
        """Linear scan of a function body (or ctor init list): records
        declarations, calls, allocations, throws, loop headers, lambdas."""
        toks = self.toks
        open_lambdas = []  # (lambda_dict, body_end_index)
        open_calls = []    # (recv, method, close_index)
        stmt_start = start
        i = start

        def sinks():
            return [fn] + [l for l, _ in open_lambdas]

        def event(key, value):
            for s in sinks():
                s[key].append(value)

        while i < end:
            # retire finished calls / lambdas
            while open_calls and i > open_calls[-1][2]:
                open_calls.pop()
            while open_lambdas and i > open_lambdas[-1][1]:
                open_lambdas.pop()
            t = self.t(i)
            ln = self.line(i)

            if t in (";", "{", "}"):
                nxt = i + 1
                # statement boundary: attempt declaration parse on the
                # *next* statement later; parse the one that just ended
                self.try_decl(fn, stmt_start, i, open_lambdas)
                stmt_start = nxt
                i = nxt
                continue

            if t == "for" and self.t(i + 1) == "(":
                close = self.match.get(i + 1, i + 1)
                self.scan_for_header(fn, i + 2, close, event)
                i += 2
                stmt_start = i
                continue
            if t == "while" and self.t(i + 1) == "(":
                close = self.match.get(i + 1, i + 1)
                self.scan_while_header(fn, i + 2, close, event)
                i += 2
                stmt_start = i
                continue

            if t == "throw":
                event("throws", ln)
                i += 1
                continue

            if t == "new":
                # `new (place) T` is placement; `new T` allocates
                if self.t(i + 1) != "(":
                    event("news", [ln, "new " + self.t(i + 1)])
                i += 1
                continue

            if t == "[":
                if self.t(i + 1) == "[":  # attribute
                    i = self.match.get(i, i) + 1
                    continue
                prev = self.t(i - 1) if i > start else ""
                if prev in self.LAMBDA_PREV or i == start or prev == "":
                    lam = self.parse_lambda(fn, i, open_calls)
                    if lam is not None:
                        lam_dict, intro_end, body_end = lam
                        fn["lambdas"].append(lam_dict)
                        open_lambdas.append((lam_dict, body_end))
                        i = intro_end  # continue scanning inside the lambda
                        stmt_start = i
                        continue
                else:
                    # subscript: ident '['
                    if re.match(r"[A-Za-z_]\w*$", prev) and prev not in KEYWORDS:
                        event("subscripts", [ln, prev])
                i += 1
                continue

            # call expression: [recv . | ->] name (  — receiver may be a
            # dotted member chain (t.soa.add), kept as "t.soa" so the
            # analyzer can resolve it member-of-member.
            if re.match(r"[A-Za-z_]\w*$", t) and t not in KEYWORDS \
                    and self.t(i + 1) == "(":
                recv = None
                if self.t(i - 1) in (".", "->"):
                    p = self.t(i - 2)
                    if re.match(r"[A-Za-z_]\w*$", p) and p not in KEYWORDS:
                        chain = [p]
                        k = i - 3
                        while len(chain) < 3 and self.t(k) in (".", "->") \
                                and re.match(r"[A-Za-z_]\w*$", self.t(k - 1)) \
                                and self.t(k - 1) not in KEYWORDS:
                            chain.insert(0, self.t(k - 1))
                            k -= 2
                        recv = ".".join(chain)
                    elif p == ")":
                        # x.accessor().method( — use the accessor name hint
                        # find the '(' matching p? walk back: ... name ( ) .
                        q = i - 3
                        if self.t(q) == "(" and \
                                re.match(r"[A-Za-z_]\w*$", self.t(q - 1)):
                            recv = self.t(q - 1) + "()"
                close = self.match.get(i + 1)
                if close is not None:
                    args = self.simple_idents(i + 2, close)
                    event("calls", [ln, recv, t, args])
                    if t in ITER_PAIR_FNS:
                        var = self.iter_pair_var(i + 2, close)
                        if var:
                            event("algoiters", [ln, var, t])
                    open_calls.append((recv, t, close))
                if t in ALLOC_FREE_FNS:
                    event("allocfns", [ln, t])
                if t == "G80211_ALLOC_OK":
                    fn["alloc_ok"] = True
                i += 1
                continue
            if re.match(r"[A-Za-z_]\w*$", t) and t not in KEYWORDS \
                    and self.t(i + 1) == "<" and t in ALLOC_FREE_FNS:
                event("allocfns", [ln, t])
                i += 1
                continue

            i += 1
        self.try_decl(fn, stmt_start, end, open_lambdas)

    def simple_idents(self, start, end):
        """Bare single-identifier arguments of a call (for named-lambda
        tracking): `f(cb)` -> ['cb']; `f(a + b)` contributes nothing."""
        out = []
        depth = 0
        item = []
        j = start
        while j < end:
            t = self.t(j)
            if t in ("(", "{", "["):
                j = self.match.get(j, j) + 1
                item.append(("()", j))
                continue
            if t == "," and depth == 0:
                if len(item) == 1 and re.match(r"[A-Za-z_]\w*$", item[0][0]):
                    out.append(item[0][0])
                item = []
                j += 1
                continue
            item.append((t, j))
            j += 1
        if len(item) == 1 and re.match(r"[A-Za-z_]\w*$", item[0][0]):
            out.append(item[0][0])
        return out

    def iter_pair_var(self, start, end):
        for j in range(start, end - 2):
            if self.t(j + 1) == "." and self.t(j + 2) in ("begin", "cbegin") \
                    and re.match(r"[A-Za-z_]\w*$", self.t(j)):
                return self.t(j)
        return None

    def scan_for_header(self, fn, start, end, event):
        texts = [self.t(j) for j in range(start, end)]
        ln = self.line(start)
        # range-for: top-level ':' not part of '::'
        depth = 0
        for k, t in enumerate(texts):
            if t in ("(", "[", "{"):
                depth += 1
            elif t in (")", "]", "}"):
                depth -= 1
            elif t == ":" and depth == 0:
                rest = texts[k + 1:]
                root = next((x for x in rest
                             if re.match(r"[A-Za-z_]\w*$", x)
                             and x not in KEYWORDS), None)
                expr = " ".join(rest)
                event("rangefors", [ln, root or "", expr[:60]])
                return
        # iterator loop: `X = VAR.begin()` or `!= VAR.end()` in the header
        for k in range(len(texts) - 2):
            if texts[k + 1] == "." and texts[k + 2] in \
                    ("begin", "cbegin", "end", "cend") \
                    and re.match(r"[A-Za-z_]\w*$", texts[k]):
                event("iterloops", [ln, texts[k]])
                return
        # also parse `for (auto it = ...; ...)` init declaration
        semi = None
        depth = 0
        for k, t in enumerate(texts):
            if t in ("(", "[", "{"):
                depth += 1
            elif t in (")", "]", "}"):
                depth -= 1
            elif t == ";" and depth == 0:
                semi = k
                break
        if semi:
            self.try_decl_texts(fn, texts[:semi],
                                self.line(start))

    def scan_while_header(self, fn, start, end, event):
        texts = [self.t(j) for j in range(start, end)]
        for k in range(len(texts) - 2):
            if texts[k + 1] == "." and texts[k + 2] in ("end", "cend") \
                    and re.match(r"[A-Za-z_]\w*$", texts[k]):
                event("iterloops", [self.line(start), texts[k]])
                return

    def try_decl(self, fn, start, end, open_lambdas):
        """Heuristic local-declaration parse of toks[start:end)."""
        texts = []
        j = start
        first_eq = None
        init_start = None
        while j < end:
            t = self.t(j)
            if t == "=" and first_eq is None:
                first_eq = len(texts)
                init_start = j + 1
                texts.append(t)
                j += 1
                continue
            if t in ("(", "{", "["):
                close = self.match.get(j)
                if close is None or close >= end:
                    return
                texts.append("(..)")
                j = close + 1
                continue
            if t == "<" and texts and re.match(r"[A-Za-z_<>:,*&\s]+$",
                                               texts[-1] + " "):
                k = self.skip_angles(j)
                texts.append("".join(self.t(x) for x in range(j, k)))
                j = k
                continue
            texts.append(t)
            j += 1
        if not texts or texts[0] in ("return", "if", "else", "switch", "case",
                                     "delete", "throw", "do", "break",
                                     "continue", "goto", "using", "typedef",
                                     "for", "while", "try", "catch", "new"):
            return
        decl_side = texts[:first_eq] if first_eq is not None else texts
        # pattern: TYPE.. NAME  (>= 2 tokens, name last, all type-ish)
        if len(decl_side) < 2:
            return
        name = decl_side[-1]
        if not re.match(r"[A-Za-z_]\w*$", name) or name in KEYWORDS:
            return
        type_toks = decl_side[:-1]
        if not all(re.match(r"[A-Za-z_]\w*$|::|<|>|\*|&|<.*>$|,", x)
                   for x in type_toks):
            return
        if any(x in ("(..)",) for x in type_toks):
            return
        bad = {"return", "delete", "throw"}
        if type_toks[0] in bad or type_toks[0] in ("this",):
            return
        type_str = " ".join(type_toks)
        fn["locals"][name] = type_str
        fn["local_lines"][name] = self.line(start)
        # named lambda? `auto cb = [..]..`
        if init_start is not None and self.t(init_start) == "[":
            fn["lambda_locals"][name] = len(fn["lambdas"])  # index of NEXT
            # lambda to be parsed — but the lambda was already parsed during
            # the linear scan (it preceded this boundary). Find by line.
            ln = self.line(init_start)
            for k, lam in enumerate(fn["lambdas"]):
                if lam["line"] == ln:
                    fn["lambda_locals"][name] = k
                    break

    def try_decl_texts(self, fn, texts, line):
        if len(texts) < 2:
            return
        name = None
        for k in range(len(texts) - 1, -1, -1):
            if re.match(r"[A-Za-z_]\w*$", texts[k]) and texts[k] not in KEYWORDS:
                name = texts[k]
                break
        if name and k > 0:
            fn["locals"][name] = " ".join(texts[:k])
            fn["local_lines"][name] = line

    def parse_lambda(self, fn, i, open_calls):
        """toks[i] == '[' in lambda-introducer position. Returns
        (lambda_dict, index_after_introducer, body_end_index) or None."""
        close_br = self.match.get(i)
        if close_br is None:
            return None
        lam = new_lambda(self.line(i), fn["qname"])
        # parse captures
        item = []
        j = i + 1
        while j <= close_br:
            t = self.t(j)
            if t in ("(", "{", "["):
                sub = self.match.get(j, j)
                item.append(("(..)", j))
                j = sub + 1
                continue
            if t in (",", "]") or j == close_br:
                self.finish_capture(lam, item)
                item = []
                j += 1
                continue
            item.append((t, j))
            j += 1
        # optional parameter list / specifiers, then body
        j = close_br + 1
        if self.t(j) == "(":
            j = self.match.get(j, j) + 1
        while self.t(j) in ("mutable", "constexpr", "noexcept", "->", "const"):
            if self.t(j) == "noexcept":
                lam["noexcept"] = True
            if self.t(j) == "->":
                j += 1  # skip return type token(s): simple case
                while self.t(j) not in ("{",) and j < len(self.toks):
                    if self.t(j) == "<":
                        j = self.skip_angles(j)
                        continue
                    j += 1
                break
            j += 1
        if self.t(j) != "{":
            return None  # not a lambda after all (array literal etc.)
        body_end = self.match.get(j)
        if body_end is None:
            return None
        # innermost open call containing this lambda = its argument position
        if open_calls:
            recv, method, _ = open_calls[-1]
            lam["argof"] = [recv, method]
        return lam, j + 1, body_end

    def finish_capture(self, lam, item):
        texts = [t for t, _ in item]
        if not texts:
            return
        if texts == ["&"]:
            lam["captures"].append(["defref", "", ""])
            return
        if texts == ["="]:
            lam["captures"].append(["defval", "", ""])
            return
        if texts[0] == "this" or texts[:2] == ["*", "this"]:
            lam["captures"].append(["this", "this", ""])
            return
        if texts[0] == "&":
            name = texts[1] if len(texts) > 1 else ""
            if "=" in texts:
                eq = texts.index("=")
                root = self.capture_root(texts[eq + 1:])
                lam["captures"].append(["initref", name, root])
            else:
                lam["captures"].append(["ref", name, ""])
            return
        name = texts[0]
        if "=" in texts:
            eq = texts.index("=")
            init = texts[eq + 1:]
            if init and init[0] == "&":
                root = self.capture_root(init[1:])
                lam["captures"].append(["addr", name, root])
            else:
                root = self.capture_root(init)
                lam["captures"].append(["initval", name, root])
            return
        lam["captures"].append(["val", name, ""])

    @staticmethod
    def capture_root(texts):
        for t in texts:
            if re.match(r"[A-Za-z_]\w*$", t) and t not in KEYWORDS:
                return t
        return ""


# ---------------------------------------------------------------------------
# Rule evaluation over the merged indexes.

class Findings:
    def __init__(self, nolint):
        self.items = []
        self.nolint = nolint  # {rel: {line: set(ids)}}

    def add(self, rel, line, rule, msg):
        ids = self.nolint.get(rel, {}).get(line, set())
        if rule in ids:
            return
        self.items.append((rel, line, rule, msg))


def type_of(name, fn, classes, file_globals):
    """Resolve a variable name's declared type spelling, innermost first."""
    if name in fn["locals"]:
        return fn["locals"][name]
    if name in fn["params"]:
        return fn["params"][name]
    if fn["cls"] and fn["cls"] in classes and name in classes[fn["cls"]]:
        return classes[fn["cls"]][name][0]
    if name in file_globals:
        return file_globals[name]
    if name.endswith("()"):
        return RECEIVER_HINTS.get(name[:-2], None)
    return None


def norm_type(t):
    return (t or "").replace("std ::", "std::").replace(" ", "")


def is_unordered(t):
    return "unordered_" in norm_type(t)


def is_container(t):
    nt = norm_type(t)
    if "Arena" in nt:
        return False
    return any(m in nt for m in CONTAINER_MARKERS)


def is_map_like(t):
    nt = norm_type(t)
    return re.search(r"\bmap\b|::map<|\bmap<|unordered_map", nt) is not None


def pointer_keyed(t):
    """std::set<T*> / std::map<T*, V> — first template arg is a raw ptr."""
    nt = norm_type(t)
    m = re.search(r"(?:multi)?(?:set|map)<", nt)
    if not m:
        return False
    depth = 1
    arg = []
    for c in nt[m.end():]:
        if c == "<":
            depth += 1
        elif c == ">":
            depth -= 1
            if depth == 0:
                break
        elif c == "," and depth == 1:
            break
        arg.append(c)
    return "".join(arg).endswith("*")


class Analyzer:
    def __init__(self, indexes, nolint, root):
        self.indexes = indexes
        self.out = Findings(nolint)
        self.root = root
        # merged views
        self.classes = {}
        self.functions = {}   # qname -> [fn, ...] (overloads merge)
        self.by_name = {}     # unqualified name -> [fn, ...]
        self.file_globals = {}  # rel -> {name: type}
        hot_decls = set()
        noexcept_decls = set()
        for idx in indexes:
            for cname, members in idx["classes"].items():
                self.classes.setdefault(cname, {}).update(members)
            self.file_globals[idx["file"]] = {
                g[1]: g[2] for g in idx["globals"]}
            hot_decls.update(idx["decl_hot"])
            noexcept_decls.update(idx["decl_noexcept"])
        for idx in indexes:
            for fn in idx["functions"]:
                if fn["qname"] in hot_decls:
                    fn["hot"] = True
                if fn["qname"] in noexcept_decls:
                    fn["noexcept"] = True
                self.functions.setdefault(fn["qname"], []).append(fn)
                self.by_name.setdefault(fn["name"], []).append(fn)

    # -- shared helpers -----------------------------------------------------

    def resolve_type(self, name, fn):
        """Resolve a receiver spelling, including dotted member chains
        ('t.soa' -> NeighborTable -> NeighborSoA)."""
        parts = name.split(".") if "." in name and not name.endswith("()") \
            else [name]
        t = type_of(parts[0], fn, self.classes,
                    self.file_globals.get(fn["file"], {}))
        for member in parts[1:]:
            if t is None:
                return None
            t = next((self.classes[c][member][0]
                      for c in self.type_classes(t)
                      if member in self.classes[c]), None)
        return t

    def type_classes(self, t):
        """Project classes named (as whole identifiers) in a type spelling."""
        return [i for i in re.findall(r"[A-Za-z_]\w*", t or "")
                if i in self.classes]

    def callees(self, fn, call):
        """Resolve a recorded call to candidate function definitions."""
        _, recv, method, _ = call
        if method in ("G80211_CHECK", "G80211_DCHECK", "G80211_ALLOC_OK"):
            return []
        if recv is not None:
            t = self.resolve_type(recv, fn)
            if t is not None:
                # method on a resolved class type
                for cname in self.type_classes(t):
                    out = self.functions.get(f"{cname}::{method}", [])
                    if out:
                        return out
                return []  # std:: containers etc. — not project functions
            # unresolved receiver: any class defining the method
            out = []
            for qname, fns in self.functions.items():
                if qname.endswith(f"::{method}"):
                    out.extend(fns)
            return out
        # unqualified: own class first, then free functions
        if fn["cls"]:
            own = self.functions.get(f'{fn["cls"]}::{method}', [])
            if own:
                return own
        return self.functions.get(method, [])

    def all_events(self, fn, key):
        """fn's own events only (lambda events were mirrored in)."""
        return fn[key]

    # -- rule: callback-capture + event-path-throw roots --------------------

    def is_cb_call(self, fn, recv, method):
        if method in CB_METHODS:
            marker, name_hints = CB_METHODS[method]
            t = self.resolve_type(recv, fn) if recv else None
            if t is not None:
                return marker in norm_type(t)
            if recv is None:
                return False
            base = recv.rstrip("_").removesuffix("()")
            return any(h in base for h in name_hints)
        # Timer member/local construction: `timer_(sched, [this]{..})` in a
        # ctor init list parses as a call with method == the member name.
        if recv is None and method:
            t = self.resolve_type(method, fn)
            if t is not None and "Timer" in norm_type(t):
                return True
        # Timer local declaration `Timer t(sched, [..]{..})` parses as a
        # call with method 't'? No — as `Timer` then 't' '(' — method 't',
        # handled above once the local's type is recorded; also accept the
        # direct `Timer(...)` spelling.
        return method == "Timer"

    def is_slab_cb_call(self, fn, recv, method):
        """Callback registrars whose callable fires IN the event slab
        (Scheduler::at/after, Timer). ThreadPool tasks are excluded: the
        pool captures task exceptions and rethrows them at wait(), so a
        throwing task is contained, not a slab escape."""
        if method in ("submit", "submit_to"):
            return False
        return self.is_cb_call(fn, recv, method)

    def check_callbacks(self):
        for fns in self.functions.values():
            for fn in fns:
                for lam in fn["lambdas"]:
                    argof = lam["argof"]
                    if not argof:
                        continue
                    if self.is_cb_call(fn, argof[0], argof[1]):
                        self.check_lambda_captures(fn, lam)
                # a named lambda passed to a cb call by identifier
                for call in fn["calls"]:
                    ln, recv, method, args = call
                    if not args or not self.is_cb_call(fn, recv, method):
                        continue
                    for a in args:
                        k = fn["lambda_locals"].get(a)
                        if k is not None and k < len(fn["lambdas"]):
                            self.check_lambda_captures(
                                fn, fn["lambdas"][k], at_line=ln)

    def check_lambda_captures(self, fn, lam, at_line=None):
        line = at_line or lam["line"]
        for kind, name, root in lam["captures"]:
            if kind == "defref":
                self.out.add(fn["file"], line, "callback-capture",
                             f"lambda passed to a slab callback registrar in "
                             f"'{fn['qname']}' captures by reference ([&]): "
                             "the callback outlives this frame "
                             "(InplaceFunction slab); capture by value or "
                             "capture `this`")
            elif kind == "ref":
                self.out.add(fn["file"], line, "callback-capture",
                             f"lambda in '{fn['qname']}' captures local "
                             f"'{name}' by reference; the scheduled callback "
                             "outlives the frame — capture by value")
            elif kind == "addr":
                if root and (root in fn["locals"] or root in fn["params"]):
                    self.out.add(fn["file"], line, "callback-capture",
                                 f"lambda in '{fn['qname']}' captures "
                                 f"'{name} = &{root}', a raw pointer to a "
                                 "stack local; the callback outlives the "
                                 "frame — copy the value instead")

    # -- rule: hot-path-alloc ----------------------------------------------

    def reachable_from_hot(self):
        roots = [fn for fns in self.functions.values() for fn in fns
                 if fn["hot"]]
        seen = {}
        work = [(fn, None) for fn in roots]
        for fn, _ in work:
            seen[id(fn)] = (fn, None)
        order = []
        while work:
            fn, parent = work.pop()
            order.append(fn)
            for call in fn["calls"]:
                for callee in self.callees(fn, call):
                    if id(callee) not in seen:
                        seen[id(callee)] = (callee, fn)
                        work.append((callee, fn))
        parents = {id(fn): p for fn, p in seen.values()}
        return order, parents

    def chain(self, fn, parents):
        names = [fn["qname"]]
        cur = parents.get(id(fn))
        depth = 0
        while cur is not None and depth < 6:
            names.append(cur["qname"])
            cur = parents.get(id(cur))
            depth += 1
        return " <- ".join(names)

    def check_hot_alloc(self):
        order, parents = self.reachable_from_hot()
        for fn in order:
            if fn["alloc_ok"]:
                continue
            where = self.chain(fn, parents)
            for ln, what in fn["news"]:
                self.out.add(fn["file"], ln, "hot-path-alloc",
                             f"'{what}' on the hot path ({where}); use an "
                             "arena/pool or G80211_ALLOC_OK with a reason")
            for ln, name in fn["allocfns"]:
                self.out.add(fn["file"], ln, "hot-path-alloc",
                             f"allocating call '{name}' on the hot path "
                             f"({where})")
            for ln, recv, method, _ in fn["calls"]:
                if method not in ALLOC_METHODS or recv is None:
                    continue
                t = self.resolve_type(recv, fn)
                if t is None or not is_container(t):
                    continue
                self.out.add(fn["file"], ln, "hot-path-alloc",
                             f"'{recv}.{method}()' may allocate "
                             f"({norm_type(t)[:40]}) on the hot path "
                             f"({where}); reserve/pool it or justify with "
                             "G80211_ALLOC_OK / NOLINT")
            for ln, recv in fn["subscripts"]:
                t = self.resolve_type(recv, fn)
                if t is None or not is_map_like(t):
                    continue
                self.out.add(fn["file"], ln, "hot-path-alloc",
                             f"'{recv}[...]' on a map allocates on first "
                             f"contact ({where}); use find() or justify "
                             "with G80211_ALLOC_OK / NOLINT")

    # -- rule: determinism --------------------------------------------------

    def check_determinism(self):
        for fns in self.functions.values():
            for fn in fns:
                for ln, root, expr in fn["rangefors"]:
                    t = self.resolve_type(root, fn)
                    if (t and is_unordered(t)) or "unordered_" in expr:
                        self.out.add(fn["file"], ln, "nondet-unordered-iter",
                                     f"range-for over unordered container "
                                     f"'{root}' in '{fn['qname']}': bucket "
                                     "order is implementation-defined")
                for ln, var in fn["iterloops"]:
                    t = self.resolve_type(var, fn)
                    if t and is_unordered(t):
                        self.out.add(fn["file"], ln, "nondet-unordered-iter",
                                     f"iterator loop over unordered "
                                     f"container '{var}' in '{fn['qname']}'")
                for ln, var, algo in fn["algoiters"]:
                    t = self.resolve_type(var, fn)
                    if t and is_unordered(t):
                        self.out.add(fn["file"], ln, "nondet-unordered-iter",
                                     f"'{algo}' over unordered container "
                                     f"'{var}' iterators in '{fn['qname']}'")
                for name, t in list(fn["locals"].items()):
                    if pointer_keyed(t):
                        self.out.add(fn["file"],
                                     fn["local_lines"].get(name, fn["line"]),
                                     "nondet-pointer-key",
                                     f"'{name}' ({norm_type(t)[:50]}) in "
                                     f"'{fn['qname']}' orders by pointer "
                                     "value — address order varies per run")
        for idx in self.indexes:
            for cname, members in idx["classes"].items():
                for name, (t, ln) in members.items():
                    if pointer_keyed(t):
                        self.out.add(idx["file"], ln, "nondet-pointer-key",
                                     f"member '{cname}::{name}' "
                                     f"({norm_type(t)[:50]}) keys an ordered "
                                     "container on a raw pointer — iteration "
                                     "order is address order")

    # -- rule: shard-isolation ----------------------------------------------

    def check_shard_isolation(self):
        payloads = set()
        sharded = []
        for idx in self.indexes:
            rel = idx["file"].replace("\\", "/")
            if "/sharded" in rel or rel.startswith("sharded"):
                sharded.append(idx)
                payloads.update(idx["mailbox_payloads"])
        for idx in sharded:
            rel = idx["file"]
            for ln, name, t, is_const, is_static in idx["globals"]:
                if is_const:
                    continue
                self.out.add(rel, ln, "shard-isolation",
                             f"mutable namespace-scope state '{name}' in the "
                             "sharded engine is shared by every shard's Sim; "
                             "route cross-shard state through an EpochMailbox")
            for fn in idx["functions"]:
                for name, t in fn["locals"].items():
                    if t.split() and t.split()[0] == "static" \
                            and "const" not in t:
                        self.out.add(rel,
                                     fn["local_lines"].get(name, fn["line"]),
                                     "shard-isolation",
                                     f"function-static '{name}' in "
                                     f"'{fn['qname']}' is shared across "
                                     "shards")
        for idx in sharded:
            for cname, members in idx["classes"].items():
                if cname not in payloads:
                    continue
                for name, (t, ln) in members.items():
                    nt = norm_type(t)
                    if nt.endswith("*") or nt.endswith("&"):
                        self.out.add(idx["file"], ln, "shard-isolation",
                                     f"EpochMailbox payload '{cname}' member "
                                     f"'{name}' ({nt[:40]}) is a pointer/"
                                     "reference: boundary packets must cross "
                                     "shards by value")

    # -- rule: event-path-throw ----------------------------------------------

    def check_event_throws(self):
        # roots: lambdas registered with a slab callback registrar
        visited = set()
        for fns in self.functions.values():
            for fn in fns:
                for lam in fn["lambdas"]:
                    argof = lam["argof"]
                    if not argof or \
                            not self.is_slab_cb_call(fn, argof[0], argof[1]):
                        continue
                    if lam["noexcept"]:
                        continue
                    origin = f'callback at {fn["file"]}:{lam["line"]}'
                    for ln in lam["throws"]:
                        self.flag_throw(fn["file"], ln, origin, direct=True)
                    self.walk_throws(fn, lam["calls"], origin, visited)

    def walk_throws(self, fn, calls, origin, visited):
        work = [(fn, c) for c in calls]
        while work:
            caller, call = work.pop()
            for callee in self.callees(caller, call):
                key = (id(callee), origin)
                if key in visited:
                    continue
                visited.add(key)
                if callee["noexcept"]:
                    continue
                if callee["file"].endswith("sim/check.h"):
                    continue
                for ln in callee["throws"]:
                    self.flag_throw(callee["file"], ln,
                                    f'{origin} via {callee["qname"]}',
                                    direct=False)
                work.extend((callee, c) for c in callee["calls"])

    def flag_throw(self, rel, line, origin, direct):
        what = "throw in a slab callback" if direct else \
            "throw reachable from a slab callback"
        self.out.add(rel, line, "event-path-throw",
                     f"{what} ({origin}): the event path requires noexcept "
                     "callbacks or G80211_CHECK-routed failures "
                     "(src/sim/check.h)")

    def run(self):
        self.check_callbacks()
        self.check_hot_alloc()
        self.check_determinism()
        self.check_shard_isolation()
        self.check_event_throws()
        return self.out


# ---------------------------------------------------------------------------
# Driver: compile_commands, cache, file discovery.

def load_db(build_dir):
    db_path = build_dir / "compile_commands.json"
    if not db_path.is_file():
        print(f"g80211_ast: {db_path} not found — configure the build first "
              "(cmake -B build -S . exports it via "
              "CMAKE_EXPORT_COMPILE_COMMANDS)", file=sys.stderr)
        sys.exit(2)
    try:
        raw = db_path.read_bytes()
        db = json.loads(raw)
    except (OSError, json.JSONDecodeError) as e:
        print(f"g80211_ast: cannot read {db_path}: {e}", file=sys.stderr)
        sys.exit(2)
    return db, hashlib.sha1(raw).hexdigest(), db_path


def db_files(db, db_path):
    out = set()
    for entry in db:
        f = Path(entry.get("file", ""))
        if not f.is_absolute():
            d = Path(entry.get("directory", "."))
            if not d.is_absolute():
                d = db_path.parent / d
            f = d / f
        try:
            out.add(f.resolve())
        except OSError:
            pass
    return out


def check_db_fresh(db, db_path, root, scan_dirs):
    """Every on-disk first-party .cc under the scanned src/ roots must be
    known to the build; a stale database silently shrinks the scan."""
    known = db_files(db, db_path)
    missing = []
    for d in scan_dirs:
        base = root / d
        if not base.is_dir():
            continue
        for cc in sorted(base.rglob("*.cc")):
            if cc.resolve() not in known:
                missing.append(cc)
    if missing:
        names = ", ".join(str(m.relative_to(root)) for m in missing[:5])
        print(f"g80211_ast: compile_commands.json is stale — {len(missing)} "
              f"translation unit(s) on disk are not in the database "
              f"({names}{', ...' if len(missing) > 5 else ''}). Re-run the "
              "cmake configure step, then retry.", file=sys.stderr)
        sys.exit(2)


def collect_nolint(rel, text):
    """{line: {rule-id}} — same-line NOLINT(id), plus NOLINTNEXTLINE(id)
    which suppresses the next *code* line: intervening blank and pure
    comment lines are skipped, so a multi-line justification comment
    reads naturally above the statement it excuses."""
    out = {}
    lines = text.split("\n")
    for i, line in enumerate(lines, 1):
        m = NOLINT_NEXT_RE.search(line)
        if m:
            ids = {s.strip().split(":")[0] for s in m.group(1).split(",")}
            j = i  # 0-based index of the following line
            while j < len(lines) and (not lines[j].strip()
                                      or lines[j].lstrip().startswith("//")):
                j += 1
            out.setdefault(j + 1, set()).update(ids)
            continue
        m = NOLINT_RE.search(line)
        if m:
            ids = {s.strip().split(":")[0] for s in m.group(1).split(",")}
            out.setdefault(i, set()).update(ids)
    return out


def parse_file(rel, path, cache_dir, db_hash):
    text = path.read_text(encoding="utf-8", errors="replace")
    nolint = collect_nolint(rel, text)
    key = None
    if cache_dir is not None:
        h = hashlib.sha1()
        h.update(f"v{TOOL_VERSION}|{db_hash}|".encode())
        h.update(text.encode("utf-8", "replace"))
        key = cache_dir / (h.hexdigest() + ".json")
        if key.is_file():
            try:
                idx = json.loads(key.read_text())
                if idx.get("version") == TOOL_VERSION:
                    idx["file"] = rel  # path may differ between checkouts
                    return idx, nolint
            except (OSError, json.JSONDecodeError):
                pass
    idx = Parser(rel, text).index
    if key is not None:
        try:
            key.write_text(json.dumps(idx))
        except OSError:
            pass
    return idx, nolint


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("paths", nargs="*",
                    help="files/dirs to scan, relative to --root (default: src)")
    ap.add_argument("--root", type=Path,
                    default=Path(__file__).resolve().parents[2],
                    help="repository root (default: two levels up)")
    ap.add_argument("-p", "--build-dir", type=Path, default=None,
                    help="directory holding compile_commands.json "
                         "(default: <root>/build; fixtures keep the database "
                         "next to their sources)")
    ap.add_argument("--frontend", choices=["builtin", "libclang"],
                    default="builtin",
                    help="AST frontend. 'builtin' is the pinned structural "
                         "frontend; 'libclang' requires the clang Python "
                         "bindings + libclang shared library and fails "
                         "loudly when they are absent")
    ap.add_argument("--no-cache", action="store_true",
                    help="bypass the per-file AST cache")
    ap.add_argument("--cache-dir", type=Path, default=None,
                    help="cache location (default: <build>/.g80211_ast_cache)")
    ap.add_argument("--list-rules", action="store_true")
    args = ap.parse_args()

    if args.list_rules:
        for r in RULES:
            print(r)
        return 0

    if args.frontend == "libclang":
        try:
            import clang.cindex  # noqa: F401
        except ImportError:
            print("g80211_ast: the libclang frontend needs the clang Python "
                  "bindings (python3-clang) and a libclang shared library; "
                  "neither ships in this container. Use --frontend builtin "
                  "(the pinned default) or install a pinned libclang.",
                  file=sys.stderr)
            return 2
        print("g80211_ast: libclang frontend adapter is not wired up yet; "
              "the builtin frontend is authoritative (see "
              "docs/static-analysis.md)", file=sys.stderr)
        return 2

    root = args.root.resolve()
    build_dir = (args.build_dir or (root / "build"))
    if not build_dir.is_absolute():
        build_dir = Path.cwd() / build_dir
    db, db_hash, db_path = load_db(build_dir)

    targets = args.paths or ["src"]
    files = []
    scan_dirs = []
    for t in targets:
        p = (root / t) if not Path(t).is_absolute() else Path(t)
        if p.is_dir():
            scan_dirs.append(t)
            files.extend(sorted(q for q in p.rglob("*")
                                if q.suffix in (".h", ".cc", ".cpp")))
        elif p.is_file():
            files.append(p)
        else:
            print(f"g80211_ast: no such path: {t}", file=sys.stderr)
            return 2
    check_db_fresh(db, db_path, root, scan_dirs)

    cache_dir = None
    if not args.no_cache:
        cache_dir = args.cache_dir or (build_dir / ".g80211_ast_cache")
        try:
            cache_dir.mkdir(parents=True, exist_ok=True)
        except OSError:
            cache_dir = None

    indexes = []
    nolint = {}
    for f in files:
        try:
            rel = str(f.resolve().relative_to(root))
        except ValueError:
            rel = str(f)
        idx, nl = parse_file(rel, f, cache_dir, db_hash)
        indexes.append(idx)
        nolint[rel] = nl

    out = Analyzer(indexes, nolint, root).run()
    seen = set()
    for path, line, rule, msg in sorted(out.items):
        key = (path, line, rule)  # one report per line+rule, origins vary
        if key in seen:
            continue
        seen.add(key)
        print(f"{path}:{line}: [{rule}] {msg}")
    n = len(seen)
    if n:
        print(f"g80211_ast: {n} finding(s) in {len(files)} file(s)",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
