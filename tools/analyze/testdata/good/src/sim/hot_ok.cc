// Fixture: a hot root that stays on the arena, with one helper that
// allocates but excuses itself via G80211_ALLOC_OK. Scans clean.
#include "src/sim/hot.h"

#include <vector>

struct PacketArena {
  void* alloc(int bytes);
};

struct Engine {
  PacketArena arena_;
  std::vector<int> cold_log_;

  G80211_HOT void drain() {
    void* p = arena_.alloc(64);
    (void)p;
    record(7);
  }

  void record(int v) {
    G80211_ALLOC_OK("cold bootstrap: the log only grows before steady state");
    cold_log_.push_back(v);
  }
};
