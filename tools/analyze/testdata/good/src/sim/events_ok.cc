// Fixture: event-path exception discipline — callbacks are noexcept, and
// invariant failures route through G80211_CHECK (the sanctioned thrower
// in src/sim/check.h), which the analyzer treats as opaque.

struct Scheduler {
  template <class F>
  void after(double delay, F fn);
};

struct Mac {
  Scheduler* sched_;
  int retries_ = 0;

  void arm() {
    sched_->after(1.0, [this]() noexcept { retries_ += 1; });
  }

  void arm_checked() {
    sched_->after(2.0, [this] {
      G80211_CHECK(retries_ <= 7);
      retries_ += 1;
    });
  }
};
