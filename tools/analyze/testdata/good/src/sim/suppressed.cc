// Fixture: real violations of every line-anchored rule, each suppressed
// with the shared rule-scoped NOLINT policy. Scans clean — a suppression
// must name the rule id and carry a reason, on the offending line.
#include "src/sim/hot.h"

#include <set>
#include <unordered_map>
#include <vector>

struct Scheduler {
  template <class F>
  void after(double delay, F fn);
};

struct Node {
  int id;
};

struct Suppressed {
  Scheduler* sched_;
  std::unordered_map<int, double> cache_;
  std::vector<int> log_;
  int total_ = 0;
  std::set<Node*> members_;  // NOLINT(nondet-pointer-key): fixture — order never observed

  void arm() {
    int pending = 3;
    sched_->after(0.0, [&] { total_ += pending; });  // NOLINT(callback-capture): fixture — fires at t=0, frame still live
  }

  G80211_HOT void drain() {
    log_.push_back(total_);  // NOLINT(hot-path-alloc): fixture — amortized growth
  }

  double sum() {
    double total = 0.0;
    for (const auto& kv : cache_) {  // NOLINT(nondet-unordered-iter): fixture — commutative reduction
      total += kv.second;
    }
    return total;
  }
};
