// Fixture: ordered iteration and value-keyed containers are fine; an
// unordered container is fine too as long as nothing iterates it.
#include <map>
#include <numeric>
#include <set>
#include <unordered_map>

struct Stats {
  std::map<int, double> by_station_;
  std::set<int> seen_;
  std::unordered_map<int, double> cache_;

  double sum_range_for() {
    double total = 0.0;
    for (const auto& kv : by_station_) {
      total += kv.second;
    }
    return total;
  }

  double sum_accumulate() {
    return std::accumulate(by_station_.begin(), by_station_.end(), 0.0,
                           [](double acc, const auto& kv) {
                             return acc + kv.second;
                           });
  }

  double lookup(int station) {
    auto it = cache_.find(station);
    return it == cache_.end() ? 0.0 : it->second;
  }
};
