// Fixture: safe callback registration — `this` and by-value captures
// only, and callbacks declared noexcept. Scans clean.

struct Scheduler {
  template <class F>
  void after(double delay, F fn);
};

struct ThreadPool {
  template <class F>
  void submit(F task);
};

struct Node {
  Scheduler* sched_;
  ThreadPool* pool_;
  int state_ = 0;

  void arm_this() {
    sched_->after(1.0, [this]() noexcept { state_ += 1; });
  }

  void arm_value(int seq) {
    sched_->after(2.0, [this, seq]() noexcept { state_ = seq; });
  }

  void arm_init_value() {
    int snapshot = state_;
    pool_->submit([this, copy = snapshot]() noexcept { state_ = copy; });
  }
};
