// Fixture: sharded engine done right — constant globals only, no
// function statics, and the EpochMailbox payload crosses by value.
#include <vector>

template <class T>
class EpochMailbox {
 public:
  void push(T v);
};

struct Packet {
  int bytes;
};

struct Boundary {
  double deliver_at;
  int link;
  Packet packet;
};

constexpr int kMaxShards = 64;

struct ShardedSim {
  std::vector<EpochMailbox<Boundary>> mailboxes_;
  int epoch_ = 0;

  int route() { return ++epoch_; }
};
