// Fixture: this translation unit exists on disk but is absent from the
// checked-in compile_commands.json — the analyzer must refuse to scan
// (exit 2) instead of silently shrinking its coverage.

int orphan() { return 42; }
