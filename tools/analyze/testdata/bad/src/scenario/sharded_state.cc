// Fixture: sharded-engine isolation violations. Expected:
// [shard-isolation] for the mutable namespace-scope global, the
// function-static counter, and the pointer member in an EpochMailbox
// payload type (boundary packets must cross shards by value).
#include <vector>

template <class T>
class EpochMailbox {
 public:
  void push(T v);
};

struct Packet {
  int bytes;
};

struct Boundary {
  double deliver_at;
  Packet* pkt;
};

int packets_in_flight = 0;

struct ShardedSim {
  std::vector<EpochMailbox<Boundary>> mailboxes_;

  int route() {
    static int counter = 0;
    return ++counter;
  }
};
