// Fixture: ordered associative containers keyed on raw pointers order by
// address, which varies run to run. Expected: [nondet-pointer-key] for
// the member and the local.
#include <map>
#include <set>

struct Node {
  int id;
};

struct Registry {
  std::set<Node*> members_;

  int rank_locals() {
    std::map<Node*, int> ranks;
    return static_cast<int>(ranks.size());
  }
};
