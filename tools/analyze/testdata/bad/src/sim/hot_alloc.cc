// Fixture: allocations reachable from a G80211_HOT root, none excused.
// Expected: [hot-path-alloc] for the direct `new`, the push_back reached
// through the call graph, and the map operator[].
#include "src/sim/hot.h"

#include <map>
#include <vector>

struct Backlog {
  std::vector<int> entries_;
  void remember(int v) { entries_.push_back(v); }
};

struct Engine {
  Backlog backlog_;
  std::map<int, int> per_station_;
  int* spare_ = nullptr;

  G80211_HOT void drain() {
    spare_ = new int(4);
    backlog_.remember(7);
    per_station_[3] += 1;
  }
};
