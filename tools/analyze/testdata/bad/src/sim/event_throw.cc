// Fixture: throws escaping slab callbacks. Expected: [event-path-throw]
// for the literal throw inside a scheduled lambda and for the throw in a
// non-noexcept function the callback reaches through the call graph.
#include <stdexcept>

struct Scheduler {
  template <class F>
  void after(double delay, F fn);
};

struct Mac {
  Scheduler* sched_;
  int retries_ = 0;

  void validate(int v);

  void arm_direct() {
    sched_->after(1.0, [this] {
      if (retries_ > 7) {
        throw std::runtime_error("retry overflow");
      }
    });
  }

  void arm_indirect() {
    sched_->after(2.0, [this] { validate(retries_); });
  }
};

void Mac::validate(int v) {
  if (v < 0) {
    throw std::logic_error("negative retry count");
  }
}
