// Fixture: every lambda here is handed to a slab callback registrar
// while capturing frame-local state by reference or raw pointer.
// Expected: [callback-capture] x3.

struct Scheduler {
  template <class F>
  void after(double delay, F fn);
};

struct Node {
  Scheduler* sched_;
  int total_ = 0;

  void arm_default_ref() {
    int pending = 3;
    sched_->after(1.0, [&] { total_ += pending; });
  }

  void arm_named_ref() {
    int budget = 7;
    sched_->after(1.0, [this, &budget] { total_ += budget; });
  }

  void arm_raw_pointer() {
    int scratch = 0;
    sched_->after(1.0, [this, p = &scratch] { total_ += *p; });
  }
};
