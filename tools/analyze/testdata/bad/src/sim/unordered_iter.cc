// Fixture: unordered-container iteration in the three shapes the regex
// lint cannot or can only partially see. Expected: [nondet-unordered-iter]
// for the iterator loop, the std::accumulate call, and the range-for over
// a member (type resolved through the class, not the loop line).
#include <numeric>
#include <unordered_map>

struct Stats {
  std::unordered_map<int, double> by_station_;

  double sum_iterator_loop() {
    double total = 0.0;
    for (auto it = by_station_.begin(); it != by_station_.end(); ++it) {
      total += it->second;
    }
    return total;
  }

  double sum_accumulate() {
    return std::accumulate(by_station_.begin(), by_station_.end(), 0.0,
                           [](double acc, const auto& kv) {
                             return acc + kv.second;
                           });
  }

  double sum_range_for() {
    double total = 0.0;
    for (const auto& kv : by_station_) {
      total += kv.second;
    }
    return total;
  }
};
